//! The replay engine: workload trace → packing outcome.

use slackvm_workload::{Workload, WorkloadEvent};

use crate::deployment::DeploymentModel;
use crate::error::SimError;
use crate::events::{EventQueue, SimEvent};
use crate::metrics::{OccupancySample, OccupancyTracker, PackingOutcome};

/// Replays `workload` against `deployment` and reports the packing
/// outcome.
///
/// Arrivals are fed through the event queue; each successful placement
/// schedules the VM's departure. The run never aborts on a deployment
/// failure (possible only on capped clusters) — failures are counted as
/// rejections, matching how a control plane degrades.
///
/// Candidate assembly per event follows the deployment's configured
/// [`IndexMode`](slackvm_sched::IndexMode) (the incremental placement
/// index by default; `DeploymentModel::set_index_mode` selects the
/// naive full rebuild for A/B comparison — both modes are
/// decision-identical).
///
/// ```
/// use slackvm_sim::{run_packing, DeploymentModel, SharedDeployment};
/// use slackvm_model::gib;
/// use slackvm_topology::builders::flat;
/// use slackvm_workload::scenarios;
/// use std::sync::Arc;
///
/// let workload = scenarios::paper_week_f(60).generate(42);
/// let mut pool = DeploymentModel::Shared(
///     SharedDeployment::new(Arc::new(flat(32)), gib(128)));
/// let outcome = run_packing(&workload, &mut pool);
/// assert_eq!(outcome.rejections, 0);
/// assert!(outcome.opened_pms > 0);
/// ```
pub fn run_packing(workload: &Workload, deployment: &mut DeploymentModel) -> PackingOutcome {
    run_packing_with_samples(workload, deployment, None)
}

/// Like [`run_packing`], additionally appending every occupancy sample
/// to `samples` (one per processed event) — the time series behind
/// utilization plots and steady-state analyses.
pub fn run_packing_with_samples(
    workload: &Workload,
    deployment: &mut DeploymentModel,
    samples: Option<&mut Vec<OccupancySample>>,
) -> PackingOutcome {
    run_packing_instrumented(
        workload,
        deployment,
        samples,
        &mut slackvm_telemetry::NullRecorder,
    )
}

/// [`run_packing`] with full telemetry: the recorder journals every
/// arrival / placement / rejection / departure / resize (plus the
/// PM-open and vNode lifecycle events the deployment emits), times each
/// event dispatch under the `sim.dispatch` span, and accumulates the
/// run-level counters `sim.deployments` / `sim.rejections`.
///
/// With a disabled recorder (the default
/// [`NullRecorder`](slackvm_telemetry::NullRecorder)) this is exactly
/// [`run_packing_with_samples`]: no clock reads, no allocations, no
/// journal.
pub fn run_packing_recorded<R: slackvm_telemetry::Recorder>(
    workload: &Workload,
    deployment: &mut DeploymentModel,
    recorder: &mut R,
) -> PackingOutcome {
    run_packing_instrumented(workload, deployment, None, recorder)
}

/// [`run_packing_instrumented`] without time-series sampling.
pub fn run_packing_instrumented<R: slackvm_telemetry::Recorder>(
    workload: &Workload,
    deployment: &mut DeploymentModel,
    samples: Option<&mut Vec<OccupancySample>>,
    recorder: &mut R,
) -> PackingOutcome {
    run_packing_observed(workload, deployment, samples, None, recorder)
}

/// The fully-general replay: optional per-event sample log, optional
/// interval-driven [`ClusterSampler`](crate::observe::ClusterSampler)
/// (snapshotting utilization, fragmentation, per-level vNode width, and
/// Algorithm-2 M/C deviation as time series), plus a recorder.
///
/// The sampler observes the cluster *after* each processed event, on its
/// own simulated-time grid: its first due tick is taken immediately, so
/// an interval longer than the replay horizon still yields exactly one
/// snapshot.
pub fn run_packing_observed<R: slackvm_telemetry::Recorder>(
    workload: &Workload,
    deployment: &mut DeploymentModel,
    mut samples: Option<&mut Vec<OccupancySample>>,
    mut sampler: Option<&mut crate::observe::ClusterSampler>,
    recorder: &mut R,
) -> PackingOutcome {
    use slackvm_telemetry::Event;

    let mut queue = EventQueue::new();
    for (t, event) in &workload.events {
        match event {
            WorkloadEvent::Arrival(vm) => queue.push(*t, SimEvent::Arrival(vm.clone())),
            WorkloadEvent::Resize { id, vcpus, mem_mib } => queue.push(
                *t,
                SimEvent::Resize {
                    id: *id,
                    vcpus: *vcpus,
                    mem_mib: *mem_mib,
                },
            ),
            WorkloadEvent::Departure { .. } => {}
        }
    }

    let mut tracker = OccupancyTracker::new();
    let mut alive: u32 = 0;
    let mut rejections = 0u32;
    let mut deployments = 0u32;

    while let Some((t, event)) = queue.pop() {
        let span = recorder.begin("sim.dispatch");
        match event {
            SimEvent::Arrival(vm) => {
                deployments += 1;
                if recorder.enabled() {
                    recorder.record(
                        t,
                        Event::VmArrival {
                            vm: vm.id,
                            vcpus: vm.spec.vcpus(),
                            mem_mib: vm.spec.mem_mib(),
                            level: vm.spec.level.ratio(),
                        },
                    );
                }
                match deployment.deploy_recorded(vm.id, vm.spec, t, recorder) {
                    Ok(pm) => {
                        alive += 1;
                        queue.push(vm.departure_secs.max(t + 1), SimEvent::Departure(vm.id));
                        if recorder.enabled() {
                            recorder.record(
                                t,
                                Event::VmPlaced {
                                    vm: vm.id,
                                    pm,
                                    level: vm.spec.level.ratio(),
                                },
                            );
                        }
                    }
                    Err(SimError::DeploymentFailed(_)) | Err(SimError::Unsatisfiable(_)) => {
                        rejections += 1;
                        if recorder.enabled() {
                            recorder.record(
                                t,
                                Event::VmRejected {
                                    vm: vm.id,
                                    vcpus: vm.spec.vcpus(),
                                    mem_mib: vm.spec.mem_mib(),
                                    level: vm.spec.level.ratio(),
                                },
                            );
                        }
                    }
                    Err(SimError::UnknownVm(_)) => unreachable!("deploy never reports UnknownVm"),
                }
            }
            SimEvent::Departure(id) => {
                let pm = deployment
                    .remove_recorded(id, t, recorder)
                    .expect("departures are only scheduled for placed VMs");
                alive -= 1;
                if recorder.enabled() {
                    recorder.record(t, Event::VmDeparted { vm: id, pm });
                }
            }
            SimEvent::Resize { id, vcpus, mem_mib } => {
                // A rejected resize (or one targeting a VM that was
                // never placed) leaves the old size in force.
                let accepted = deployment
                    .resize_recorded(id, vcpus, mem_mib, t, recorder)
                    .is_ok();
                if recorder.enabled() {
                    recorder.record(
                        t,
                        Event::VmResized {
                            vm: id,
                            vcpus,
                            mem_mib,
                            accepted,
                        },
                    );
                }
            }
        }
        recorder.end(span);
        let (alloc, capacity) = deployment.totals();
        let sample =
            OccupancySample::from_totals(t, alive, deployment.opened_pms(), alloc, capacity);
        tracker.observe(sample);
        if let Some(log) = samples.as_deref_mut() {
            log.push(sample);
        }
        if let Some(s) = sampler.as_deref_mut() {
            s.sample_if_due(t, deployment);
        }
    }

    if recorder.enabled() {
        recorder.count("sim.deployments", deployments as u64);
        recorder.count("sim.rejections", rejections as u64);
        recorder.gauge("sim.opened_pms", deployment.opened_pms() as f64);
        recorder.gauge("sim.peak_alive_vms", tracker.peak_alive() as f64);
    }

    let (mean_cpu, mean_mem) = tracker.means();
    PackingOutcome {
        model: deployment.name(),
        opened_pms: deployment.opened_pms(),
        peak_alive_vms: tracker.peak_alive(),
        at_peak: tracker.peak().unwrap_or(OccupancySample {
            time_secs: 0,
            alive_vms: 0,
            opened_pms: 0,
            unallocated_cpu: 0.0,
            unallocated_mem: 0.0,
        }),
        mean_unallocated_cpu: mean_cpu,
        mean_unallocated_mem: mean_mem,
        rejections,
        deployments,
    }
}

/// Statistics of a compacting replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionStats {
    /// Compaction rounds executed.
    pub rounds: u32,
    /// Successful migrations across all rounds.
    pub migrations: u32,
    /// PMs drained (cumulative, per round).
    pub drained: u32,
}

/// Replays `workload` against a shared SlackVM pool, running a
/// compaction round every `every_secs` of simulated time — the paper's
/// future-work live migration as an operating mode. Returns the packing
/// outcome plus migration statistics.
pub fn run_packing_compacting(
    workload: &Workload,
    deployment: &mut crate::deployment::SharedDeployment,
    every_secs: u64,
) -> (PackingOutcome, CompactionStats) {
    run_packing_compacting_recorded(
        workload,
        deployment,
        every_secs,
        &mut slackvm_telemetry::NullRecorder,
    )
}

/// [`run_packing_compacting`] with telemetry: each round's plan and
/// applied moves are journalled (see
/// [`SharedDeployment::compact_now_recorded`](crate::deployment::SharedDeployment::compact_now_recorded)),
/// a `CompactionRound` event closes every round, and the
/// [`CompactionStats`] fields are mirrored into the metrics registry as
/// `sim.compaction.rounds` / `.migrations` / `.drained`.
pub fn run_packing_compacting_recorded<R: slackvm_telemetry::Recorder>(
    workload: &Workload,
    deployment: &mut crate::deployment::SharedDeployment,
    every_secs: u64,
    recorder: &mut R,
) -> (PackingOutcome, CompactionStats) {
    use slackvm_telemetry::Event;

    let every = every_secs.max(1);
    let mut queue = EventQueue::new();
    for (t, event) in &workload.events {
        if let WorkloadEvent::Arrival(vm) = event {
            queue.push(*t, SimEvent::Arrival(vm.clone()));
        }
    }
    let mut tracker = OccupancyTracker::new();
    let mut alive: u32 = 0;
    let mut rejections = 0u32;
    let mut deployments = 0u32;
    let mut stats = CompactionStats::default();
    let mut next_compaction = every;

    while let Some((t, event)) = queue.pop() {
        while t >= next_compaction {
            let (migrations, drained) = deployment.compact_now_recorded(next_compaction, recorder);
            stats.rounds += 1;
            stats.migrations += migrations;
            stats.drained += drained;
            if recorder.enabled() {
                recorder.record(
                    next_compaction,
                    Event::CompactionRound {
                        round: stats.rounds,
                        migrations,
                        drained,
                    },
                );
                recorder.count("sim.compaction.rounds", 1);
                recorder.count("sim.compaction.migrations", migrations as u64);
                recorder.count("sim.compaction.drained", drained as u64);
            }
            next_compaction += every;
        }
        let span = recorder.begin("sim.dispatch");
        match event {
            SimEvent::Arrival(vm) => {
                deployments += 1;
                if recorder.enabled() {
                    recorder.record(
                        t,
                        Event::VmArrival {
                            vm: vm.id,
                            vcpus: vm.spec.vcpus(),
                            mem_mib: vm.spec.mem_mib(),
                            level: vm.spec.level.ratio(),
                        },
                    );
                }
                match deployment.deploy_recorded(vm.id, vm.spec, t, recorder) {
                    Ok(pm) => {
                        alive += 1;
                        queue.push(vm.departure_secs.max(t + 1), SimEvent::Departure(vm.id));
                        if recorder.enabled() {
                            recorder.record(
                                t,
                                Event::VmPlaced {
                                    vm: vm.id,
                                    pm,
                                    level: vm.spec.level.ratio(),
                                },
                            );
                        }
                    }
                    Err(_) => {
                        rejections += 1;
                        if recorder.enabled() {
                            recorder.record(
                                t,
                                Event::VmRejected {
                                    vm: vm.id,
                                    vcpus: vm.spec.vcpus(),
                                    mem_mib: vm.spec.mem_mib(),
                                    level: vm.spec.level.ratio(),
                                },
                            );
                        }
                    }
                }
            }
            SimEvent::Departure(id) => {
                let pm = deployment
                    .remove_recorded(id, t, recorder)
                    .expect("departures are only scheduled for placed VMs");
                alive -= 1;
                if recorder.enabled() {
                    recorder.record(t, Event::VmDeparted { vm: id, pm });
                }
            }
            SimEvent::Resize { id, vcpus, mem_mib } => {
                let _ = deployment.resize_recorded(id, vcpus, mem_mib, t, recorder);
            }
        }
        recorder.end(span);
        tracker.observe(OccupancySample::from_totals(
            t,
            alive,
            deployment.cluster.opened(),
            deployment.cluster.total_alloc(),
            deployment.cluster.total_capacity(),
        ));
    }

    if recorder.enabled() {
        recorder.count("sim.deployments", deployments as u64);
        recorder.count("sim.rejections", rejections as u64);
        recorder.gauge("sim.opened_pms", deployment.cluster.opened() as f64);
    }

    let (mean_cpu, mean_mem) = tracker.means();
    let outcome = PackingOutcome {
        model: format!("slackvm/{}+compaction", deployment.policy.name()),
        opened_pms: deployment.cluster.opened(),
        peak_alive_vms: tracker.peak_alive(),
        at_peak: tracker.peak().unwrap_or(OccupancySample {
            time_secs: 0,
            alive_vms: 0,
            opened_pms: 0,
            unallocated_cpu: 0.0,
            unallocated_mem: 0.0,
        }),
        mean_unallocated_cpu: mean_cpu,
        mean_unallocated_mem: mean_mem,
        rejections,
        deployments,
    };
    (outcome, stats)
}

/// Statistics of a failure-injected replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailureStats {
    /// Hosts failed.
    pub hosts_failed: u32,
    /// VMs evicted by failures.
    pub vms_evicted: u32,
    /// Evicted VMs successfully re-placed.
    pub vms_replaced: u32,
    /// Evicted VMs the cluster could not re-place (lost).
    pub vms_lost: u32,
}

/// Replays `workload` against a shared pool while injecting host
/// failures at the given `(time_secs, pm)` points. Evicted VMs are
/// immediately re-placed on surviving hosts (opening new ones if
/// allowed); VMs that cannot be re-placed are lost and their departures
/// cancelled.
pub fn run_packing_with_failures(
    workload: &Workload,
    deployment: &mut crate::deployment::SharedDeployment,
    failures: &[(u64, slackvm_model::PmId)],
) -> (PackingOutcome, FailureStats) {
    run_packing_with_failures_recorded(
        workload,
        deployment,
        failures,
        &mut slackvm_telemetry::NullRecorder,
    )
}

/// [`run_packing_with_failures`] with telemetry: every injected failure
/// journals `HostFailed` + per-VM `VmEvicted` (see
/// [`SharedDeployment::fail_host_recorded`](crate::deployment::SharedDeployment::fail_host_recorded)),
/// each re-placement outcome journals `VmReplaced` or `VmLost`, and the
/// [`FailureStats`] fields are mirrored into the metrics registry as
/// `sim.failures.hosts_failed` / `.vms_evicted` / `.vms_replaced` /
/// `.vms_lost`.
pub fn run_packing_with_failures_recorded<R: slackvm_telemetry::Recorder>(
    workload: &Workload,
    deployment: &mut crate::deployment::SharedDeployment,
    failures: &[(u64, slackvm_model::PmId)],
    recorder: &mut R,
) -> (PackingOutcome, FailureStats) {
    use slackvm_telemetry::Event;

    let mut queue = EventQueue::new();
    for (t, event) in &workload.events {
        if let WorkloadEvent::Arrival(vm) = event {
            queue.push(*t, SimEvent::Arrival(vm.clone()));
        }
    }
    let mut failure_queue: Vec<(u64, slackvm_model::PmId)> = failures.to_vec();
    failure_queue.sort_by_key(|(t, pm)| (*t, *pm));
    let mut failure_idx = 0usize;

    let mut tracker = OccupancyTracker::new();
    let mut alive: u32 = 0;
    let mut rejections = 0u32;
    let mut deployments = 0u32;
    let mut stats = FailureStats::default();
    let mut lost: std::collections::BTreeSet<slackvm_model::VmId> = Default::default();

    while let Some((t, event)) = queue.pop() {
        while failure_idx < failure_queue.len() && failure_queue[failure_idx].0 <= t {
            let (t_fail, pm) = failure_queue[failure_idx];
            failure_idx += 1;
            let evicted = deployment.fail_host_recorded(pm, t_fail, recorder);
            stats.hosts_failed += 1;
            for (id, spec) in evicted {
                stats.vms_evicted += 1;
                match deployment.deploy_recorded(id, spec, t_fail, recorder) {
                    Ok(new_pm) => {
                        stats.vms_replaced += 1;
                        if recorder.enabled() {
                            recorder.record(t_fail, Event::VmReplaced { vm: id, pm: new_pm });
                        }
                    }
                    Err(_) => {
                        stats.vms_lost += 1;
                        lost.insert(id);
                        alive -= 1;
                        if recorder.enabled() {
                            recorder.record(t_fail, Event::VmLost { vm: id });
                        }
                    }
                }
            }
        }
        let span = recorder.begin("sim.dispatch");
        match event {
            SimEvent::Arrival(vm) => {
                deployments += 1;
                if recorder.enabled() {
                    recorder.record(
                        t,
                        Event::VmArrival {
                            vm: vm.id,
                            vcpus: vm.spec.vcpus(),
                            mem_mib: vm.spec.mem_mib(),
                            level: vm.spec.level.ratio(),
                        },
                    );
                }
                match deployment.deploy_recorded(vm.id, vm.spec, t, recorder) {
                    Ok(pm) => {
                        alive += 1;
                        queue.push(vm.departure_secs.max(t + 1), SimEvent::Departure(vm.id));
                        if recorder.enabled() {
                            recorder.record(
                                t,
                                Event::VmPlaced {
                                    vm: vm.id,
                                    pm,
                                    level: vm.spec.level.ratio(),
                                },
                            );
                        }
                    }
                    Err(_) => {
                        rejections += 1;
                        if recorder.enabled() {
                            recorder.record(
                                t,
                                Event::VmRejected {
                                    vm: vm.id,
                                    vcpus: vm.spec.vcpus(),
                                    mem_mib: vm.spec.mem_mib(),
                                    level: vm.spec.level.ratio(),
                                },
                            );
                        }
                    }
                }
            }
            SimEvent::Departure(id) => {
                if !lost.remove(&id) {
                    let pm = deployment
                        .remove_recorded(id, t, recorder)
                        .expect("departures target placed, non-lost VMs");
                    alive -= 1;
                    if recorder.enabled() {
                        recorder.record(t, Event::VmDeparted { vm: id, pm });
                    }
                }
            }
            SimEvent::Resize { id, vcpus, mem_mib } => {
                if !lost.contains(&id) {
                    let _ = deployment.resize_recorded(id, vcpus, mem_mib, t, recorder);
                }
            }
        }
        recorder.end(span);
        tracker.observe(OccupancySample::from_totals(
            t,
            alive,
            deployment.cluster.opened(),
            deployment.cluster.total_alloc(),
            deployment.cluster.total_capacity(),
        ));
    }

    if recorder.enabled() {
        recorder.count("sim.failures.hosts_failed", stats.hosts_failed as u64);
        recorder.count("sim.failures.vms_evicted", stats.vms_evicted as u64);
        recorder.count("sim.failures.vms_replaced", stats.vms_replaced as u64);
        recorder.count("sim.failures.vms_lost", stats.vms_lost as u64);
    }

    if recorder.enabled() {
        recorder.count("sim.deployments", deployments as u64);
        recorder.count("sim.rejections", rejections as u64);
        recorder.gauge("sim.opened_pms", deployment.cluster.opened() as f64);
    }

    let (mean_cpu, mean_mem) = tracker.means();
    let outcome = PackingOutcome {
        model: format!("slackvm/{}+failures", deployment.policy.name()),
        opened_pms: deployment.cluster.opened(),
        peak_alive_vms: tracker.peak_alive(),
        at_peak: tracker.peak().unwrap_or(OccupancySample {
            time_secs: 0,
            alive_vms: 0,
            opened_pms: 0,
            unallocated_cpu: 0.0,
            unallocated_mem: 0.0,
        }),
        mean_unallocated_cpu: mean_cpu,
        mean_unallocated_mem: mean_mem,
        rejections,
        deployments,
    };
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{DedicatedDeployment, SharedDeployment};
    use slackvm_model::{OversubLevel, PmConfig};
    use slackvm_topology::builders;
    use slackvm_workload::{
        catalog, ArrivalModel, DistributionPoint, WorkloadGenerator, WorkloadSpec,
    };
    use std::sync::Arc;

    fn small_workload(letter: char, seed: u64) -> Workload {
        WorkloadGenerator::new(WorkloadSpec {
            catalog: catalog::azure(),
            mix: DistributionPoint::by_letter(letter).unwrap().mix(),
            arrivals: ArrivalModel::constant(60, 86_400, 3 * 86_400),
            seed,
        })
        .generate()
    }

    fn dedicated() -> DeploymentModel {
        DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::simulation_host(),
            vec![
                OversubLevel::of(1),
                OversubLevel::of(2),
                OversubLevel::of(3),
            ],
        ))
    }

    fn shared() -> DeploymentModel {
        DeploymentModel::Shared(SharedDeployment::new(
            Arc::new(builders::flat(32)),
            slackvm_model::gib(128),
        ))
    }

    #[test]
    fn replay_is_deterministic() {
        let w = small_workload('F', 1);
        let a = run_packing(&w, &mut dedicated());
        let b = run_packing(&w, &mut dedicated());
        assert_eq!(a, b);
    }

    #[test]
    fn no_rejections_on_unbounded_clusters() {
        let w = small_workload('E', 2);
        let out = run_packing(&w, &mut dedicated());
        assert_eq!(out.rejections, 0);
        assert_eq!(out.deployments as usize, w.num_arrivals());
        assert!(out.opened_pms > 0);
        let out = run_packing(&w, &mut shared());
        assert_eq!(out.rejections, 0);
    }

    #[test]
    fn all_vms_depart_by_end() {
        let w = small_workload('F', 3);
        let mut model = shared();
        let out = run_packing(&w, &mut model);
        // After the full replay every VM departed: nothing allocated.
        let (alloc, _) = model.totals();
        assert!(alloc.is_empty(), "leftover allocation {alloc:?}");
        assert!(out.peak_alive_vms > 0);
    }

    #[test]
    fn shared_needs_no_more_pms_than_dedicated_on_mix_f() {
        // The headline direction of the paper: on a complementary mix
        // the shared pool packs at least as well as dedicated clusters.
        let w = small_workload('F', 4);
        let base = run_packing(&w, &mut dedicated());
        let slack = run_packing(&w, &mut shared());
        assert!(
            slack.opened_pms <= base.opened_pms,
            "slackvm {} vs baseline {}",
            slack.opened_pms,
            base.opened_pms
        );
    }

    #[test]
    fn compacting_replay_matches_or_beats_plain_shared() {
        let w = small_workload('F', 7);
        let mut plain = shared();
        let plain_out = run_packing(&w, &mut plain);
        let mut pool = SharedDeployment::new(Arc::new(builders::flat(32)), slackvm_model::gib(128));
        let (compacted_out, stats) = run_packing_compacting(&w, &mut pool, 6 * 3600);
        assert_eq!(compacted_out.rejections, 0);
        assert!(
            compacted_out.opened_pms <= plain_out.opened_pms,
            "compaction opened {} vs plain {}",
            compacted_out.opened_pms,
            plain_out.opened_pms
        );
        assert!(stats.rounds > 0);
        assert!(compacted_out.model.contains("compaction"));
        // Post-replay: fully drained, invariants hold on every worker.
        use slackvm_hypervisor::Host as _;
        for host in pool.cluster.hosts() {
            host.check_invariants().unwrap();
            assert!(host.is_idle());
        }
    }

    #[test]
    fn compaction_rounds_fire_on_schedule() {
        let w = small_workload('E', 8);
        let horizon = w.events.last().map(|(t, _)| *t).unwrap_or(0);
        let mut pool = SharedDeployment::new(Arc::new(builders::flat(32)), slackvm_model::gib(128));
        let (_, stats) = run_packing_compacting(&w, &mut pool, 86_400);
        // One round per simulated day that has a subsequent event.
        assert!(stats.rounds >= (horizon / 86_400).saturating_sub(1) as u32);
    }

    #[test]
    fn sample_log_covers_every_event() {
        let w = small_workload('E', 6);
        let mut samples = Vec::new();
        let out = run_packing_with_samples(&w, &mut dedicated(), Some(&mut samples));
        // One sample per processed event: every arrival (incl. rejected)
        // plus every departure of a placed VM.
        assert_eq!(
            samples.len() as u32,
            out.deployments + (out.deployments - out.rejections)
        );
        // Times are non-decreasing and the peak sample appears in the log.
        assert!(samples.windows(2).all(|p| p[0].time_secs <= p[1].time_secs));
        assert!(samples.contains(&out.at_peak));
        // The log ends fully drained.
        assert_eq!(samples.last().unwrap().alive_vms, 0);
    }

    #[test]
    fn recorded_replay_matches_plain_and_mirrors_outcome() {
        use slackvm_telemetry::Telemetry;
        let w = small_workload('F', 11);
        let plain = run_packing(&w, &mut shared());
        let mut telemetry = Telemetry::new();
        let recorded = run_packing_recorded(&w, &mut shared(), &mut telemetry);
        // Recording must not perturb the simulation.
        assert_eq!(recorded, plain);
        // The journal and the counters agree with the outcome.
        let placements = recorded.deployments - recorded.rejections;
        assert_eq!(
            telemetry.journal.count_kind("vm_arrival") as u32,
            recorded.deployments
        );
        assert_eq!(telemetry.journal.count_kind("vm_placed") as u32, placements);
        assert_eq!(
            telemetry.journal.count_kind("vm_rejected") as u32,
            recorded.rejections
        );
        assert_eq!(
            telemetry.journal.count_kind("vm_departed") as u32,
            placements
        );
        assert_eq!(
            telemetry.journal.count_kind("pm_opened") as u32,
            recorded.opened_pms
        );
        assert_eq!(
            telemetry.metrics.counter("sim.deployments") as u32,
            recorded.deployments
        );
        assert_eq!(
            telemetry.metrics.counter("sim.rejections") as u32,
            recorded.rejections
        );
        assert_eq!(
            telemetry.metrics.gauge("sim.opened_pms"),
            Some(recorded.opened_pms as f64)
        );
        // vNode lifecycle closes: every created vNode eventually
        // dissolves (the replay drains fully).
        assert_eq!(
            telemetry.journal.count_kind("v_node_created"),
            telemetry.journal.count_kind("v_node_dissolved")
        );
        assert!(telemetry.journal.count_kind("v_node_created") > 0);
        // Dispatch spans were timed and feed a duration histogram.
        assert!(telemetry.metrics.histogram("sim.dispatch").is_some());
        assert!(telemetry.trace.len() > 0);
        // Journal timestamps are non-decreasing.
        let times: Vec<u64> = telemetry.journal.iter().map(|r| r.time_secs).collect();
        assert!(times.windows(2).all(|p| p[0] <= p[1]));
    }

    #[test]
    fn recorded_compaction_journal_matches_stats() {
        use slackvm_telemetry::Telemetry;
        let w = small_workload('F', 7);
        let mut plain_pool =
            SharedDeployment::new(Arc::new(builders::flat(32)), slackvm_model::gib(128));
        let (plain_out, plain_stats) = run_packing_compacting(&w, &mut plain_pool, 6 * 3600);
        let mut pool = SharedDeployment::new(Arc::new(builders::flat(32)), slackvm_model::gib(128));
        let mut telemetry = Telemetry::new();
        let (out, stats) = run_packing_compacting_recorded(&w, &mut pool, 6 * 3600, &mut telemetry);
        assert_eq!(out, plain_out);
        assert_eq!(stats, plain_stats);
        // The folded counters equal the legacy stats struct, field by
        // field — the struct's public API is unchanged, the registry is
        // a faithful mirror.
        assert_eq!(
            telemetry.metrics.counter("sim.compaction.rounds") as u32,
            stats.rounds
        );
        assert_eq!(
            telemetry.metrics.counter("sim.compaction.migrations") as u32,
            stats.migrations
        );
        assert_eq!(
            telemetry.metrics.counter("sim.compaction.drained") as u32,
            stats.drained
        );
        // ... and so do the journalled round events.
        assert_eq!(
            telemetry.journal.count_kind("compaction_round") as u32,
            stats.rounds
        );
        let migrations_journalled: u32 = telemetry
            .journal
            .iter()
            .filter_map(|r| match r.event {
                slackvm_telemetry::Event::CompactionRound { migrations, .. } => Some(migrations),
                _ => None,
            })
            .sum();
        assert_eq!(migrations_journalled, stats.migrations);
        assert_eq!(
            telemetry.journal.count_kind("compaction_planned") as u32,
            stats.rounds
        );
    }

    #[test]
    fn recorded_failures_journal_matches_stats() {
        use slackvm_model::PmId;
        use slackvm_telemetry::Telemetry;
        let w = small_workload('F', 9);
        let failures = vec![(86_400, PmId(0)), (2 * 86_400, PmId(1))];
        let mut plain_pool =
            SharedDeployment::new(Arc::new(builders::flat(32)), slackvm_model::gib(128));
        let (plain_out, plain_stats) = run_packing_with_failures(&w, &mut plain_pool, &failures);
        let mut pool = SharedDeployment::new(Arc::new(builders::flat(32)), slackvm_model::gib(128));
        let mut telemetry = Telemetry::new();
        let (out, stats) =
            run_packing_with_failures_recorded(&w, &mut pool, &failures, &mut telemetry);
        assert_eq!(out, plain_out);
        assert_eq!(stats, plain_stats);
        assert!(stats.hosts_failed > 0 && stats.vms_evicted > 0);
        // Journal event counts equal the stats counters.
        assert_eq!(
            telemetry.journal.count_kind("host_failed") as u32,
            stats.hosts_failed
        );
        assert_eq!(
            telemetry.journal.count_kind("vm_evicted") as u32,
            stats.vms_evicted
        );
        assert_eq!(
            telemetry.journal.count_kind("vm_replaced") as u32,
            stats.vms_replaced
        );
        assert_eq!(
            telemetry.journal.count_kind("vm_lost") as u32,
            stats.vms_lost
        );
        // ... and the folded registry counters do too.
        assert_eq!(
            telemetry.metrics.counter("sim.failures.hosts_failed") as u32,
            stats.hosts_failed
        );
        assert_eq!(
            telemetry.metrics.counter("sim.failures.vms_evicted") as u32,
            stats.vms_evicted
        );
        assert_eq!(
            telemetry.metrics.counter("sim.failures.vms_replaced") as u32,
            stats.vms_replaced
        );
        assert_eq!(
            telemetry.metrics.counter("sim.failures.vms_lost") as u32,
            stats.vms_lost
        );
    }

    #[test]
    fn observed_replay_samples_deterministically() {
        use slackvm_telemetry::TimeSeriesStore;
        let w = small_workload('F', 12);
        let run = || {
            let mut sampler = crate::observe::ClusterSampler::new(6 * 3600);
            let out = run_packing_observed(
                &w,
                &mut shared(),
                None,
                Some(&mut sampler),
                &mut slackvm_telemetry::NullRecorder,
            );
            (out, sampler.into_store().to_csv())
        };
        let (a_out, a_csv) = run();
        let (b_out, b_csv) = run();
        assert_eq!(a_out, b_out);
        assert_eq!(a_csv, b_csv, "same workload + interval ⇒ identical CSV");
        // The CSV parses back into at least the five headline series.
        let store = TimeSeriesStore::from_csv(&a_csv).unwrap();
        assert!(store.len() >= 5, "only {} series", store.len());
        for name in [
            "cluster.cpu_utilization",
            "cluster.fragmentation",
            "cluster.active_pms",
            "cluster.mc_deviation_mean",
        ] {
            assert!(store.series(name).is_some(), "missing {name}");
        }
        assert!(
            store.iter().any(|s| s.name().starts_with("vnode.width.l")),
            "no per-level width series"
        );
        // Sampling must not perturb the simulation.
        assert_eq!(a_out, run_packing(&w, &mut shared()));
    }

    #[test]
    fn interval_beyond_horizon_yields_one_sample() {
        let w = small_workload('E', 13);
        let mut sampler = crate::observe::ClusterSampler::new(u64::MAX / 4);
        run_packing_observed(
            &w,
            &mut shared(),
            None,
            Some(&mut sampler),
            &mut slackvm_telemetry::NullRecorder,
        );
        assert_eq!(sampler.samples_taken(), 1, "exactly one initial sample");
        assert!(sampler.store().len() >= 5);
    }

    #[test]
    fn peak_sample_is_meaningful() {
        let w = small_workload('A', 5);
        let out = run_packing(&w, &mut dedicated());
        assert!(out.at_peak.alive_vms == out.peak_alive_vms);
        assert!(out.at_peak.opened_pms <= out.opened_pms);
        assert!((0.0..=1.0).contains(&out.at_peak.unallocated_cpu));
        assert!((0.0..=1.0).contains(&out.at_peak.unallocated_mem));
        // Azure 1:1 is CPU-bound: memory strands more than CPU.
        assert!(out.at_peak.unallocated_mem > out.at_peak.unallocated_cpu);
    }
}
