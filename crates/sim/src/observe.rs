//! Cluster observables and the simulated-time sampler.
//!
//! The paper's headline results are trajectories: utilization climbing as
//! the pool packs, vNode widths breathing with arrivals, the M/C ratio of
//! each PM converging on its hardware target under Algorithm 2. This
//! module turns a [`DeploymentModel`](crate::DeploymentModel) into a set
//! of point-in-time observables and drives a
//! [`Sampler`](slackvm_telemetry::Sampler) at a configurable
//! simulated-time interval, so a replay leaves behind time series instead
//! of only end-of-run aggregates.

use std::collections::BTreeMap;

use slackvm_hypervisor::Host;
use slackvm_model::PmId;
use slackvm_telemetry::timeseries::{Sampler, TimeSeriesStore};

use crate::deployment::DeploymentModel;
use crate::metrics::OccupancySample;

/// One PM's utilization snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmUtilization {
    /// The machine.
    pub pm: PmId,
    /// Allocated CPU over capacity, in `[0, 1]`.
    pub cpu: f64,
    /// Allocated memory over capacity, in `[0, 1]`.
    pub mem: f64,
    /// Absolute distance of the allocated M/C ratio from the machine's
    /// hardware target (GiB per core) — the quantity Algorithm 2 drives
    /// towards zero. `None` on idle machines (no allocation, no ratio).
    pub mc_deviation: Option<f64>,
}

/// A point-in-time view of the whole deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterObservables {
    /// VMs currently placed.
    pub alive_vms: u64,
    /// PMs opened so far.
    pub opened_pms: u32,
    /// PMs hosting at least one VM.
    pub active_pms: u32,
    /// Cluster-wide allocated CPU over opened capacity, in `[0, 1]`.
    pub cpu_utilization: f64,
    /// Cluster-wide allocated memory over opened capacity, in `[0, 1]`.
    pub mem_utilization: f64,
    /// Free-core fragmentation: `1 − max_free_on_one_pm / total_free`.
    /// 0 when all free capacity sits on one machine (a big VM can land),
    /// approaching 1 when it is shredded across many. 0 when nothing is
    /// free.
    pub fragmentation: f64,
    /// Mean M/C deviation over active PMs (GiB per core).
    pub mc_deviation_mean: f64,
    /// Worst M/C deviation over active PMs (GiB per core).
    pub mc_deviation_max: f64,
    /// Occupied width per oversubscription level, in physical cores —
    /// vNode cores on the shared pool, allocated cores per dedicated
    /// sub-cluster on the baseline.
    pub level_width_cores: BTreeMap<u32, f64>,
    /// Per-machine utilizations, in PM-id order.
    pub per_pm: Vec<PmUtilization>,
}

/// Computes the host-generic observables (everything except the
/// per-level widths, which depend on the deployment model).
pub(crate) fn observe_hosts<'a, H: Host + 'a>(
    hosts: impl Iterator<Item = &'a H>,
    alive_vms: u64,
) -> ClusterObservables {
    let mut alloc_cpu = 0u64; // millicores
    let mut cap_cpu = 0u64;
    let mut alloc_mem = 0u64;
    let mut cap_mem = 0u64;
    let mut total_free = 0u64;
    let mut max_free = 0u64;
    let mut active = 0u32;
    let mut dev_sum = 0.0f64;
    let mut dev_max = 0.0f64;
    let mut dev_n = 0u32;
    let mut per_pm = Vec::new();
    for host in hosts {
        let config = host.config();
        let alloc = host.alloc();
        let cpu_cap = config.cpu_capacity().0;
        alloc_cpu += alloc.cpu.0;
        cap_cpu += cpu_cap;
        alloc_mem += alloc.mem_mib;
        cap_mem += config.mem_mib;
        let free = cpu_cap.saturating_sub(alloc.cpu.0);
        total_free += free;
        max_free = max_free.max(free);
        let mc_deviation = if host.is_idle() || alloc.cpu.is_zero() {
            None
        } else {
            active += 1;
            let d = alloc.mc_ratio().distance(config.target_ratio());
            dev_sum += d;
            dev_max = dev_max.max(d);
            dev_n += 1;
            Some(d)
        };
        per_pm.push(PmUtilization {
            pm: host.id(),
            cpu: if cpu_cap == 0 {
                0.0
            } else {
                alloc.cpu.0 as f64 / cpu_cap as f64
            },
            mem: if config.mem_mib == 0 {
                0.0
            } else {
                alloc.mem_mib as f64 / config.mem_mib as f64
            },
            mc_deviation,
        });
    }
    ClusterObservables {
        alive_vms,
        opened_pms: per_pm.len() as u32,
        active_pms: active,
        cpu_utilization: if cap_cpu == 0 {
            0.0
        } else {
            alloc_cpu as f64 / cap_cpu as f64
        },
        mem_utilization: if cap_mem == 0 {
            0.0
        } else {
            alloc_mem as f64 / cap_mem as f64
        },
        fragmentation: if total_free == 0 {
            0.0
        } else {
            1.0 - max_free as f64 / total_free as f64
        },
        mc_deviation_mean: if dev_n == 0 {
            0.0
        } else {
            dev_sum / dev_n as f64
        },
        mc_deviation_max: dev_max,
        level_width_cores: BTreeMap::new(),
        per_pm,
    }
}

/// Drives a [`Sampler`] over a [`DeploymentModel`], recording the full
/// observable set at every due simulated-time tick.
///
/// Cluster-wide series are always recorded; the per-PM utilization
/// series (three per machine) are opt-in via [`Self::with_per_pm`] so a
/// thousand-machine replay does not balloon its CSV by default.
#[derive(Debug)]
pub struct ClusterSampler {
    sampler: Sampler,
    per_pm: bool,
    samples_taken: u64,
}

impl ClusterSampler {
    /// A sampler ticking every `interval_secs` of simulated time
    /// (clamped to ≥ 1). The first observation is always due.
    pub fn new(interval_secs: u64) -> Self {
        ClusterSampler {
            sampler: Sampler::new(interval_secs),
            per_pm: false,
            samples_taken: 0,
        }
    }

    /// Also record per-PM `pm.{id}.cpu_util` / `.mem_util` /
    /// `.mc_deviation` series.
    pub fn with_per_pm(mut self) -> Self {
        self.per_pm = true;
        self
    }

    /// The sampling interval, simulated seconds.
    pub fn interval_secs(&self) -> u64 {
        self.sampler.interval_secs()
    }

    /// Number of snapshots taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Samples `model` at simulated time `t` if the interval elapsed;
    /// returns whether a snapshot was taken.
    pub fn sample_if_due(&mut self, t: u64, model: &DeploymentModel) -> bool {
        if !self.sampler.due(t) {
            return false;
        }
        self.record_observables(t, &model.observables());
        self.sampler.advance(t);
        true
    }

    /// Unconditionally records one snapshot of precomputed observables.
    pub fn record_observables(&mut self, t: u64, obs: &ClusterObservables) {
        self.samples_taken += 1;
        let s = &mut self.sampler;
        s.record("cluster.alive_vms", t, obs.alive_vms as f64);
        s.record("cluster.opened_pms", t, obs.opened_pms as f64);
        s.record("cluster.active_pms", t, obs.active_pms as f64);
        s.record("cluster.cpu_utilization", t, obs.cpu_utilization);
        s.record("cluster.mem_utilization", t, obs.mem_utilization);
        s.record("cluster.fragmentation", t, obs.fragmentation);
        s.record("cluster.mc_deviation_mean", t, obs.mc_deviation_mean);
        s.record("cluster.mc_deviation_max", t, obs.mc_deviation_max);
        for (level, cores) in &obs.level_width_cores {
            s.record(&format!("vnode.width.l{level}"), t, *cores);
        }
        if self.per_pm {
            for pm in &obs.per_pm {
                let id = pm.pm.0;
                s.record(&format!("pm.{id}.cpu_util"), t, pm.cpu);
                s.record(&format!("pm.{id}.mem_util"), t, pm.mem);
                if let Some(d) = pm.mc_deviation {
                    s.record(&format!("pm.{id}.mc_deviation"), t, d);
                }
            }
        }
    }

    /// The accumulated series.
    pub fn store(&self) -> &TimeSeriesStore {
        self.sampler.store()
    }

    /// Consumes the sampler, yielding the series.
    pub fn into_store(self) -> TimeSeriesStore {
        self.sampler.into_store()
    }
}

/// Downsamples an [`OccupancySample`] log onto an interval grid — the
/// bridge from the steady-state pipeline (which keeps per-event samples)
/// to the time-series exporters. The first sample is always kept; later
/// samples land on the same grid a live [`Sampler`] would have used.
pub fn store_from_samples(samples: &[OccupancySample], interval_secs: u64) -> TimeSeriesStore {
    let mut sampler = Sampler::new(interval_secs);
    for s in samples {
        if !sampler.due(s.time_secs) {
            continue;
        }
        let t = s.time_secs;
        sampler.record("cluster.alive_vms", t, s.alive_vms as f64);
        sampler.record("cluster.opened_pms", t, s.opened_pms as f64);
        sampler.record("cluster.cpu_utilization", t, 1.0 - s.unallocated_cpu);
        sampler.record("cluster.mem_utilization", t, 1.0 - s.unallocated_mem);
        sampler.advance(t);
    }
    sampler.into_store()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::SharedDeployment;
    use slackvm_model::{gib, OversubLevel, VmId, VmSpec};
    use slackvm_topology::builders;
    use std::sync::Arc;

    fn shared_model() -> DeploymentModel {
        DeploymentModel::Shared(SharedDeployment::new(
            Arc::new(builders::flat(32)),
            gib(128),
        ))
    }

    #[test]
    fn observables_cover_shared_pool() {
        let mut model = shared_model();
        model
            .deploy(VmId(0), VmSpec::of(4, gib(16), OversubLevel::of(1)))
            .unwrap();
        model
            .deploy(VmId(1), VmSpec::of(6, gib(8), OversubLevel::of(3)))
            .unwrap();
        let obs = model.observables();
        assert_eq!(obs.alive_vms, 2);
        assert_eq!(obs.opened_pms, 1);
        assert_eq!(obs.active_pms, 1);
        assert!(obs.cpu_utilization > 0.0 && obs.cpu_utilization <= 1.0);
        assert!(obs.mem_utilization > 0.0 && obs.mem_utilization <= 1.0);
        // One machine holds all free cores: no fragmentation.
        assert_eq!(obs.fragmentation, 0.0);
        // Both levels occupy vNode width.
        assert_eq!(obs.level_width_cores.get(&1), Some(&4.0));
        assert_eq!(obs.level_width_cores.get(&3), Some(&2.0));
        assert_eq!(obs.per_pm.len(), 1);
        assert!(obs.per_pm[0].mc_deviation.is_some());
        assert!(obs.mc_deviation_max >= obs.mc_deviation_mean);
    }

    #[test]
    fn sampler_respects_interval_grid() {
        let mut model = shared_model();
        model
            .deploy(VmId(0), VmSpec::of(2, gib(8), OversubLevel::of(1)))
            .unwrap();
        let mut sampler = ClusterSampler::new(100);
        assert!(sampler.sample_if_due(0, &model), "first tick always due");
        assert!(!sampler.sample_if_due(50, &model));
        assert!(sampler.sample_if_due(100, &model));
        assert!(!sampler.sample_if_due(199, &model));
        assert!(sampler.sample_if_due(250, &model));
        assert_eq!(sampler.samples_taken(), 3);
        let store = sampler.into_store();
        let alive = store.series("cluster.alive_vms").unwrap();
        let times: Vec<u64> = alive.points().map(|p| p.time_secs).collect();
        assert_eq!(times, vec![0, 100, 250]);
        assert!(store.len() >= 5, "at least five distinct series");
    }

    #[test]
    fn per_pm_series_are_opt_in() {
        let mut model = shared_model();
        model
            .deploy(VmId(0), VmSpec::of(2, gib(8), OversubLevel::of(1)))
            .unwrap();
        let mut plain = ClusterSampler::new(60);
        plain.sample_if_due(0, &model);
        assert!(plain.store().series("pm.0.cpu_util").is_none());
        let mut detailed = ClusterSampler::new(60).with_per_pm();
        detailed.sample_if_due(0, &model);
        assert!(detailed.store().series("pm.0.cpu_util").is_some());
        assert!(detailed.store().series("pm.0.mc_deviation").is_some());
    }

    #[test]
    fn downsampling_keeps_first_and_grid_samples() {
        let samples: Vec<OccupancySample> = (0..10)
            .map(|i| OccupancySample {
                time_secs: i * 30,
                alive_vms: i as u32,
                opened_pms: 1,
                unallocated_cpu: 0.5,
                unallocated_mem: 0.25,
            })
            .collect();
        let store = store_from_samples(&samples, 100);
        let alive = store.series("cluster.alive_vms").unwrap();
        let times: Vec<u64> = alive.points().map(|p| p.time_secs).collect();
        // 0 is kept; next grid marks at 100, 200 are first crossed by
        // t=120 and t=210.
        assert_eq!(times, vec![0, 120, 210]);
        let util = store.series("cluster.cpu_utilization").unwrap();
        assert!(util.points().all(|p| (p.value - 0.5).abs() < 1e-12));
    }
}
