//! The `slackvm` binary: parse argv, dispatch, print.

use std::process::ExitCode;

use slackvm_cli::{run, Args};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(raw) {
        Ok(args) => args,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
