//! A small, dependency-free argument parser.
//!
//! Grammar: `slackvm <command> [--key value]... [--flag]...`. Values
//! never start with `--`; everything else is a positional argument.

use std::collections::BTreeMap;

use crate::error::CliError;

/// Parsed arguments of one invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    /// The subcommand (first positional).
    pub command: String,
    /// Remaining positionals, in order.
    pub positionals: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses a raw argument list (without the program name).
    pub fn parse<I, S>(raw: I) -> Result<Args, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                if name.is_empty() {
                    return Err(CliError::BadArgument("--".into()));
                }
                // `--key=value` or `--key value` or bare flag.
                if let Some((key, value)) = name.split_once('=') {
                    args.options.insert(key.to_string(), value.to_string());
                } else if iter.peek().is_some_and(|next| !next.starts_with("--")) {
                    let value = iter.next().expect("peeked");
                    args.options.insert(name.to_string(), value);
                } else {
                    args.flags.push(name.to_string());
                }
            } else if args.command.is_empty() {
                args.command = token;
            } else {
                args.positionals.push(token);
            }
        }
        Ok(args)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A parsed numeric option.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| CliError::BadValue {
                key: key.to_string(),
                value: raw.to_string(),
            }),
        }
    }

    /// A parsed numeric option with a default.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, CliError> {
        Ok(self.get_parsed(key)?.unwrap_or(default))
    }

    /// Whether a bare flag was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Rejects unknown option keys (typo protection).
    pub fn expect_keys(&self, allowed: &[&str]) -> Result<(), CliError> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(CliError::UnknownOption(key.clone()));
            }
        }
        for flag in &self.flags {
            if !allowed.contains(&flag.as_str()) {
                return Err(CliError::UnknownOption(flag.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_options_and_flags() {
        let args =
            Args::parse(["fig3", "--provider", "azure", "--population=300", "--json"]).unwrap();
        assert_eq!(args.command, "fig3");
        assert_eq!(args.get("provider"), Some("azure"));
        assert_eq!(args.get_parsed_or::<u32>("population", 500).unwrap(), 300);
        assert!(args.has_flag("json"));
        assert!(!args.has_flag("provider"));
    }

    #[test]
    fn positionals_are_kept_in_order() {
        let args = Args::parse(["sweep", "mc", "extra"]).unwrap();
        assert_eq!(args.command, "sweep");
        assert_eq!(args.positionals, vec!["mc", "extra"]);
    }

    #[test]
    fn bad_numeric_value_is_reported() {
        let args = Args::parse(["x", "--population", "many"]).unwrap();
        let err = args.get_parsed::<u32>("population").unwrap_err();
        assert!(err.to_string().contains("population"));
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let args = Args::parse(["x", "--provder", "azure"]).unwrap();
        let err = args.expect_keys(&["provider"]).unwrap_err();
        assert!(err.to_string().contains("provder"));
        assert!(args.expect_keys(&["provder"]).is_ok());
    }

    #[test]
    fn double_dash_alone_is_an_error() {
        assert!(Args::parse(["x", "--"]).is_err());
    }

    #[test]
    fn flag_before_option_value_boundary() {
        // `--json --provider azure`: json is a flag, not consuming
        // "--provider" as its value.
        let args = Args::parse(["x", "--json", "--provider", "azure"]).unwrap();
        assert!(args.has_flag("json"));
        assert_eq!(args.get("provider"), Some("azure"));
    }
}
