//! CLI errors.

use thiserror::Error;

/// Anything that can go wrong between argv and output.
#[derive(Debug, Error)]
pub enum CliError {
    /// An argument that is not valid syntax.
    #[error("malformed argument: {0}")]
    BadArgument(String),

    /// An option with an unparsable value.
    #[error("invalid value for --{key}: {value:?}")]
    BadValue {
        /// Option name.
        key: String,
        /// Offending raw value.
        value: String,
    },

    /// An option the command does not know.
    #[error("unknown option --{0} (see `slackvm help`)")]
    UnknownOption(String),

    /// An unknown subcommand.
    #[error("unknown command {0:?} (see `slackvm help`)")]
    UnknownCommand(String),

    /// A required option that was not given.
    #[error("missing required option --{0}")]
    MissingOption(&'static str),

    /// A semantically invalid value.
    #[error("{0}")]
    Invalid(String),

    /// I/O failure reading or writing a trace file.
    #[error("i/o error on {path}: {source}")]
    Io {
        /// File involved.
        path: String,
        /// Underlying error.
        #[source]
        source: std::io::Error,
    },

    /// JSON (de)serialization failure.
    #[error("json error: {0}")]
    Json(#[from] serde_json::Error),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        assert!(CliError::UnknownCommand("fig9".into())
            .to_string()
            .contains("fig9"));
        assert!(CliError::MissingOption("provider")
            .to_string()
            .contains("--provider"));
    }
}
