//! Command implementations.

use std::fmt::Write as _;
use std::sync::Arc;

use slackvm::experiments::{
    self, hardware_mc_sweep, population_sweep, replicated_savings, PackingConfig,
};
use slackvm::perf::Fig2Scenario;
use slackvm::prelude::*;
use slackvm::report::TextTable;

use crate::args::Args;
use crate::error::CliError;

/// The help text.
pub fn help() -> String {
    "\
slackvm — reproduction driver for 'SlackVM: Packing Virtual Machines in
Oversubscribed Cloud Infrastructures' (CLUSTER 2024)

usage: slackvm <command> [options]

commands:
  tables                         Tables I-III vs the paper
  fig2      [--step S] [--no-pooling] [--svg FILE]
                                 Table IV + Fig. 2 response times
  fig3      --provider P [--population N] [--seed S] [--svg FILE]
                                 unallocated resources, distributions A..O
  fig4      --provider P [--population N] [--seed S] [--grid-step G]
            [--svg FILE]         PM-savings grid
  generate  --provider P --mix M --population N [--seed S] [--out FILE]
            [--days D] [--lognormal] [--resizes FRAC]
                                 write a workload trace as JSON
                                 (M: a letter A..O or 'p1,p2,p3' shares)
  replay    --trace FILE --model dedicated|shared [--fleet N]
            [--policy NAME] [--index naive|incremental]
            [--events-out FILE] [--trace-out FILE] [--metrics-out FILE]
            [--series-out FILE] [--prom-out FILE]
            [--sample-interval SECS] [--sample-per-pm]
                                 replay a JSON trace; optionally record a
                                 JSONL event journal, a Chrome trace
                                 (Perfetto-loadable), a metrics summary
                                 (.json for JSON, else text), a sampled
                                 time-series CSV, and a Prometheus
                                 text exposition; --index selects the
                                 placement-index mode (incremental by
                                 default; naive rescans the fleet per
                                 event — same decisions, for A/B timing)
  obs       --series FILE [--prom FILE] [--gnuplot-out FILE]
            [--png-out FILE]     dashboard for a sampled run: summary
                                 table with sparklines from a
                                 --series-out CSV; optionally validate a
                                 Prometheus file and emit a gnuplot
                                 script
  compact   --trace FILE [--at-day D]
                                 compaction analysis of the day-D state
  rebalance plan|apply --trace FILE [--at N] [--model dedicated|shared]
            [--policy NAME] [--fleet N] [--index naive|incremental]
            [--topology SPEC] [--mem GIB] [--max-migrations N]
            [--max-moved-gib G] [--max-concurrent N]
                                 consolidation pass over the cluster
                                 state a trace replay reaches at event
                                 N (default: the whole trace): 'plan'
                                 prints the migration plan, human then
                                 JSON, moving nothing; 'apply' executes
                                 it offline and reports active PMs
                                 before/after under the migration
                                 budget
  pressure  status|plan|apply --trace FILE [--at N]
            [--model dedicated|shared] [--policy NAME] [--fleet N]
            [--index naive|incremental] [--topology SPEC] [--mem GIB]
            [--max-migrations N] [--max-moved-gib G]
            [--max-concurrent N] [--usage-seed S] [--hot-frac F]
                                 hotspot report and spread-out
                                 mitigation over the cluster state a
                                 trace replay reaches at event N:
                                 'status' prints the per-PM pressure
                                 scorecard (hot/warm/cold), 'plan'
                                 prints the mitigation plan that drains
                                 hot PMs onto cold ones, 'apply'
                                 executes it offline; --hot-frac marks
                                 that fraction of VMs as hot under the
                                 synthesized usage signal seeded by
                                 --usage-seed
  sweep     mc|population|seeds --provider P [--mix M] [--population N]
                                 sensitivity sweeps
  recommend --vcpus N --level L --demand d1,d2,...
                                 dynamic oversubscription recommendation
  layout    [--topology SPEC] [--mem GIB] VM ...
                                 place VM specs (4c8g, 2c4g@3) on one
                                 worker and print the core map
  scenarios [--population N] [--run NAME]
                                 tour the canned workload scenarios
  steady    --trace FILE [--model M] [--svg FILE] [--series-out FILE]
            [--sample-interval SECS]
                                 steady-state analysis of a replay
  report    --trace FILE [--out FILE]
                                 full markdown report for a trace
  calibrate [--targets b,s;b,s;b,s] [--step S]
                                 fit the contention model to latency targets
  serve     [--addr HOST:PORT | --port P] [--shards N]
            [--queue-depth N] [--batch N] [--deadline-ms MS]
            [--model shared|dedicated] [--policy NAME] [--fleet N]
            [--index naive|incremental] [--topology SPEC] [--mem GIB]
            [--sample-interval-ms MS] [--state-dir DIR]
            [--fsync every|interval|off] [--fsync-interval-ms MS]
            [--snapshot-every N] [--retain K] [--durable-fail-stop]
            [--obs-addr HOST:PORT] [--stall-ms MS]
            [--trace off|stages] [--trace-sample N] [--trace-out FILE]
            [--slo-window-s S] [--slo-p99-ms MS] [--slo-availability F]
            [--rebalance-every-ms MS] [--rebalance-max-migrations N]
            [--rebalance-max-moved-gib G] [--rebalance-max-concurrent N]
            [--pressure-every-ms MS] [--pressure-max-migrations N]
            [--pressure-max-moved-gib G] [--pressure-max-concurrent N]
            [--pressure-usage-seed S] [--pressure-hot-frac F]
                                 run the online placement service: line
                                 JSON over TCP, HTTP GET /metrics for a
                                 Prometheus snapshot; a client's
                                 {\"op\":\"shutdown\"} stops it;
                                 --state-dir journals every committed
                                 decision to a per-shard write-ahead
                                 log and restarts recover the fleet;
                                 --obs-addr starts a dedicated listener
                                 serving /metrics, /healthz (per-shard
                                 heartbeat watchdog), and /slo (rolling
                                 error-budget scorecard) off the
                                 request path; --trace-sample N records
                                 every Nth request's full lifecycle as
                                 Chrome-trace spans (--trace-out);
                                 fail-pm/drain-pm/recover-pm requests
                                 evict a PM and re-place its VMs
                                 through normal admission;
                                 --durable-fail-stop panics the shard
                                 on WAL errors instead of degrading to
                                 journal-off; --rebalance-every-ms runs
                                 a background consolidation tick per
                                 shard that migrates VMs off the
                                 least-utilized PMs under the budget
                                 flags, journalled like admissions and
                                 paused while a PM is failed/draining,
                                 the journal is degraded, or the SLO
                                 error budget is burning;
                                 --pressure-every-ms runs the hotspot
                                 mitigation tick that spreads VMs off
                                 hot PMs onto cold ones under its own
                                 budget flags (interlocked with the
                                 consolidation tick — never both in
                                 one tick, pressure first), with the
                                 per-VM usage signal synthesized from
                                 --pressure-usage-seed and
                                 --pressure-hot-frac
  bombard   [--addr HOST:PORT] [--scenario NAME] [--population N]
            [--seed S] [--clients N] [--requests N] [--rate R]
            [--shards N] [--policy NAME] [--fleet N] [--deadline-ms MS]
            [--series-out FILE] [--prom-out FILE] [--shutdown]
            [--trace off|stages] [--trace-sample N] [--trace-out FILE]
            [--chaos-fail-every N] [--hot-frac F] [--usage-seed S]
                                 drive scenario traffic at a placement
                                 service — over TCP when --addr is
                                 given, else against an in-process
                                 service; --rate switches from closed
                                 to open loop; --shutdown stops the
                                 remote server afterwards; the report
                                 prints the server-side stage breakdown
                                 (queue/place/commit) next to the
                                 client-observed percentiles;
                                 --chaos-fail-every N makes client 0
                                 fail and recover PMs every N of its
                                 placements, exercising evacuation
                                 under live load; --hot-frac F pins
                                 that fraction of placed VMs in place
                                 (they never depart mid-run), skewing
                                 per-VM usage so hotspots form — the
                                 signal the server's --pressure plane
                                 (seeded with the same --usage-seed)
                                 detects and mitigates
  recover   --dir DIR            recover a serve state directory offline
                                 and report per shard what a restart
                                 would restore (snapshot, WAL tail,
                                 torn bytes, VM/PM counts)
  fsck      --dir DIR            verify a serve state directory: replay
                                 the journal from genesis through a
                                 fresh model and prove the recovered
                                 state is exactly the committed
                                 history (nonzero exit on divergence)

providers: azure, ovhcloud, balanced
"
    .to_string()
}

fn provider(args: &Args) -> Result<Catalog, CliError> {
    match args.get("provider") {
        None => Err(CliError::MissingOption("provider")),
        Some("azure") => Ok(catalog::azure()),
        Some("ovhcloud") => Ok(catalog::ovhcloud()),
        Some("balanced") => Ok(catalog::balanced()),
        Some(custom) if custom.starts_with("file:") => {
            let path = &custom[5..];
            let raw = std::fs::read_to_string(path).map_err(|source| CliError::Io {
                path: path.to_string(),
                source,
            })?;
            Catalog::from_json(&raw).map_err(|e| CliError::Invalid(e.to_string()))
        }
        Some(other) => Err(CliError::Invalid(format!(
            "unknown provider {other:?} (azure, ovhcloud, balanced, file:PATH)"
        ))),
    }
}

fn mix(args: &Args, default: &str) -> Result<LevelMix, CliError> {
    let raw = args.get_or("mix", default);
    if raw.len() == 1 {
        let letter = raw.chars().next().expect("len checked");
        return DistributionPoint::by_letter(letter.to_ascii_uppercase())
            .map(|p| p.mix())
            .ok_or_else(|| CliError::Invalid(format!("no distribution letter {raw:?}")));
    }
    let shares: Vec<f64> = raw
        .split(',')
        .map(|p| p.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| CliError::Invalid(format!("cannot parse mix {raw:?}")))?;
    if shares.len() != 3 {
        return Err(CliError::Invalid(
            "a mix needs exactly three shares (1:1, 2:1, 3:1)".into(),
        ));
    }
    LevelMix::three_level(shares[0], shares[1], shares[2])
        .ok_or_else(|| CliError::Invalid("mix shares must sum to a positive total".into()))
}

fn write_svg(args: &Args, svg: String) -> Result<Option<String>, CliError> {
    match args.get("svg") {
        None => Ok(None),
        Some(path) => {
            std::fs::write(path, &svg).map_err(|source| CliError::Io {
                path: path.to_string(),
                source,
            })?;
            Ok(Some(format!("wrote {path} ({} bytes)", svg.len())))
        }
    }
}

fn packing_config(args: &Args) -> Result<PackingConfig, CliError> {
    Ok(PackingConfig {
        target_population: args.get_parsed_or("population", 500)?,
        seed: args.get_parsed_or("seed", 0x5AC4)?,
        ..PackingConfig::default()
    })
}

/// `slackvm tables`
pub fn tables(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&[])?;
    let mut out = String::new();
    let mut t1 = TextTable::new([
        "dataset",
        "mean vCPU (ours/paper)",
        "mean vRAM GiB (ours/paper)",
    ]);
    for row in experiments::table1() {
        t1.row([
            row.provider.clone(),
            format!("{:.2} / {:.2}", row.mean_vcpus, row.paper_vcpus),
            format!("{:.2} / {:.2}", row.mean_mem_gib, row.paper_mem_gb),
        ]);
    }
    let _ = writeln!(out, "Table I\n{}", t1.render());
    let mut t2 = TextTable::new(["dataset", "1:1", "2:1", "3:1"]);
    for row in experiments::table2() {
        t2.row([
            row.provider.clone(),
            format!("{:.1} / {:.1}", row.ratios[0], row.paper[0]),
            format!("{:.1} / {:.1}", row.ratios[1], row.paper[1]),
            format!("{:.1} / {:.1}", row.ratios[2], row.paper[2]),
        ]);
    }
    let _ = writeln!(out, "Table II (ours/paper, GiB per core)\n{}", t2.render());
    let _ = writeln!(out, "Table III\n{}", experiments::table3());
    Ok(out)
}

/// `slackvm fig2`
pub fn fig2(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&["step", "no-pooling", "svg"])?;
    let scenario = Fig2Scenario {
        step_secs: args.get_parsed_or("step", 120)?,
        pooling: !args.has_flag("no-pooling"),
        ..Fig2Scenario::default()
    };
    let outcome = scenario.run();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "co-hosted {} VMs; spans {:?}\n",
        outcome.slackvm_total_vms, outcome.slackvm_span_threads
    );
    let _ = writeln!(out, "{}", experiments::physical::render_table4(&outcome));
    let _ = writeln!(out, "{}", experiments::physical::render_fig2(&outcome));
    if let Some(note) = write_svg(args, slackvm_viz::fig2_svg(&outcome))? {
        let _ = writeln!(out, "{note}");
    }
    Ok(out)
}

/// `slackvm fig3`
pub fn fig3(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&["provider", "population", "seed", "svg"])?;
    let cat = provider(args)?;
    let config = packing_config(args)?;
    let rows = experiments::run_fig3(&cat, &config);
    let mut t = TextTable::new([
        "dist",
        "mix",
        "base cpu",
        "base mem",
        "slack cpu",
        "slack mem",
        "PMs",
    ]);
    for r in &rows {
        t.row([
            r.letter.to_string(),
            format!("{}/{}/{}", r.shares.0, r.shares.1, r.shares.2),
            format!("{:.1}%", r.baseline_cpu * 100.0),
            format!("{:.1}%", r.baseline_mem * 100.0),
            format!("{:.1}%", r.slackvm_cpu * 100.0),
            format!("{:.1}%", r.slackvm_mem * 100.0),
            format!("{} -> {}", r.baseline_pms, r.slackvm_pms),
        ]);
    }
    let mut out = format!(
        "Fig. 3 — {} ({} VMs, seed {:#x})\n{}",
        cat.provider,
        config.target_population,
        config.seed,
        t.render()
    );
    if let Some(note) = write_svg(args, slackvm_viz::fig3_svg(&rows, &cat.provider))? {
        let _ = writeln!(out, "{note}");
    }
    Ok(out)
}

/// `slackvm fig4`
pub fn fig4(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&["provider", "population", "seed", "grid-step", "svg"])?;
    let cat = provider(args)?;
    let config = packing_config(args)?;
    let step: u32 = args.get_parsed_or("grid-step", 25)?;
    if step == 0 || 100 % step != 0 {
        return Err(CliError::Invalid("--grid-step must divide 100".into()));
    }
    let grid = experiments::run_fig4(&cat, &config, step);
    let mut out = format!(
        "Fig. 4 — {} ({} VMs): % PMs saved; rows 2:1 share, cols 1:1 share\n\n",
        cat.provider, config.target_population
    );
    let levels: Vec<u32> = (0..=100 / step).map(|i| i * step).collect();
    let _ = write!(out, "{:>6}", "");
    for p1 in &levels {
        let _ = write!(out, "{p1:>8}");
    }
    let _ = writeln!(out);
    for p2 in levels.iter().rev() {
        let _ = write!(out, "{p2:>6}");
        for p1 in &levels {
            match grid.at(*p1, *p2) {
                Some(cell) => {
                    let _ = write!(out, "{:>7.1}%", cell.savings_pct);
                }
                None => {
                    let _ = write!(out, "{:>8}", "");
                }
            }
        }
        let _ = writeln!(out);
    }
    if let Some(best) = grid.best() {
        let _ = writeln!(
            out,
            "\nbest: {}/{}/{} -> {:.1}% ({} -> {} PMs)",
            best.p1, best.p2, best.p3, best.savings_pct, best.baseline_pms, best.slackvm_pms
        );
    }
    if let Some(note) = write_svg(args, slackvm_viz::fig4_svg(&grid))? {
        let _ = writeln!(out, "{note}");
    }
    Ok(out)
}

/// `slackvm generate`
pub fn generate(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&[
        "provider",
        "mix",
        "population",
        "seed",
        "out",
        "days",
        "lognormal",
        "resizes",
    ])?;
    let cat = provider(args)?;
    let mix = mix(args, "F")?;
    let population: u32 = args.get_parsed_or("population", 500)?;
    let days: u64 = args.get_parsed_or("days", 7)?;
    let seed: u64 = args.get_parsed_or("seed", 0x5AC4)?;
    let mut arrivals = ArrivalModel::constant(population, 2 * 86_400, days * 86_400);
    if args.has_flag("lognormal") {
        arrivals = arrivals.with_lognormal_lifetimes(1.2);
    }
    let mut workload = WorkloadGenerator::new(WorkloadSpec {
        catalog: cat.clone(),
        mix,
        arrivals,
        seed,
    })
    .generate();
    let resize_fraction: f64 = args.get_parsed_or("resizes", 0.0)?;
    if resize_fraction > 0.0 {
        workload =
            slackvm::workload::inject_resizes(&workload, &cat, resize_fraction, seed ^ 0x5E51_2E);
    }
    workload
        .validate()
        .map_err(|e| CliError::Invalid(format!("generated trace failed validation: {e}")))?;
    let json = serde_json::to_string(&workload)?;
    let stats = slackvm::workload::TraceStats::of(&workload)
        .ok_or_else(|| CliError::Invalid("empty trace generated".into()))?;
    let summary = format!(
        "generated {} arrivals (peak population {}), mean {:.2} vCPU / {:.2} GiB",
        stats.arrivals, stats.peak_population, stats.mean_vcpus, stats.mean_mem_gib
    );
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|source| CliError::Io {
                path: path.to_string(),
                source,
            })?;
            Ok(format!("{summary}\nwrote {path} ({} bytes)", json.len()))
        }
        None => Ok(format!("{summary}\n{json}")),
    }
}

fn load_trace(args: &Args) -> Result<Workload, CliError> {
    let path = args.get("trace").ok_or(CliError::MissingOption("trace"))?;
    let raw = std::fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_string(),
        source,
    })?;
    // A truncated or corrupt trace must come back as one actionable
    // line naming the file, never a panic or a bare parser message.
    let workload: Workload = serde_json::from_str(&raw).map_err(|e| {
        CliError::Invalid(format!(
            "trace {path} is not valid JSON ({e}); was the file truncated mid-write?"
        ))
    })?;
    workload
        .validate()
        .map_err(|e| CliError::Invalid(format!("trace {path} is invalid: {e}")))?;
    Ok(workload)
}

/// Resolves a placement-policy name with an actionable error.
fn parse_policy(raw: &str) -> Result<slackvm::sched::PlacementPolicy, CliError> {
    slackvm::sched::PlacementPolicy::by_name(raw).ok_or_else(|| {
        CliError::Invalid(format!(
            "unknown policy {raw:?} ({})",
            slackvm::sched::POLICY_NAMES.join(", ")
        ))
    })
}

/// Builds the deployment model the trace-replaying commands (`replay`,
/// `rebalance`) run against, from the shared `--model`/`--policy`/
/// `--fleet`/`--topology`/`--mem`/`--index` flag family. Everything is
/// validated here, before the caller touches the (potentially large)
/// trace file, so a typo dies in microseconds.
fn trace_model(args: &Args) -> Result<DeploymentModel, CliError> {
    let fleet: Option<u32> = args.get_parsed("fleet")?;
    let topo = slackvm::topology::topology_from_spec(args.get_or("topology", "cores=32"))
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    let mem = gib(args.get_parsed_or("mem", 128)?);
    let mut model = match args.get_or("model", "shared") {
        "dedicated" => {
            if args.get("policy").is_some() {
                return Err(CliError::Invalid(
                    "--policy applies to the shared model only (dedicated packs first-fit per level)"
                        .into(),
                ));
            }
            DeploymentModel::Dedicated(DedicatedDeployment::new(
                PmConfig::of(topo.num_cores(), mem),
                [
                    OversubLevel::of(1),
                    OversubLevel::of(2),
                    OversubLevel::of(3),
                ],
            ))
        }
        "shared" => {
            let topo = Arc::new(topo.clone());
            let policy = parse_policy(args.get_or("policy", "progress+bestfit"))?;
            DeploymentModel::Shared(match fleet {
                Some(n) => {
                    let mut pool = SharedDeployment::with_capped_cluster(topo, mem, n);
                    pool.policy = policy;
                    pool
                }
                None => SharedDeployment::with_policy(topo, mem, policy),
            })
        }
        other => {
            return Err(CliError::Invalid(format!(
                "unknown model {other:?} (dedicated, shared)"
            )))
        }
    };
    let index_raw = args.get_or("index", "incremental");
    let index_mode = IndexMode::parse(index_raw).ok_or_else(|| {
        CliError::Invalid(format!(
            "unknown index mode {index_raw:?} (naive, incremental)"
        ))
    })?;
    model.set_index_mode(index_mode);
    Ok(model)
}

/// `slackvm replay`
pub fn replay(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&[
        "trace",
        "model",
        "fleet",
        "topology",
        "mem",
        "policy",
        "index",
        "events-out",
        "trace-out",
        "metrics-out",
        "series-out",
        "prom-out",
        "sample-interval",
        "sample-per-pm",
    ])?;
    let mut model = trace_model(args)?;
    let index_mode = model.index_mode();
    let workload = load_trace(args)?;
    let sampling = ["series-out", "prom-out", "sample-interval"]
        .iter()
        .any(|key| args.get(key).is_some())
        || args.has_flag("sample-per-pm");
    let recording = sampling
        || ["events-out", "trace-out", "metrics-out"]
            .iter()
            .any(|key| args.get(key).is_some());
    let sample_interval: u64 = args.get_parsed_or("sample-interval", 3600)?;
    let mut notes = String::new();
    let out = if recording {
        let mut telemetry = Telemetry::new();
        let mut sampler = sampling.then(|| {
            let sampler = ClusterSampler::new(sample_interval);
            if args.has_flag("sample-per-pm") {
                sampler.with_per_pm()
            } else {
                sampler
            }
        });
        let out = run_packing_observed(
            &workload,
            &mut model,
            None,
            sampler.as_mut(),
            &mut telemetry,
        );
        let write = |path: &str, content: &str| -> Result<(), CliError> {
            std::fs::write(path, content).map_err(|source| CliError::Io {
                path: path.to_string(),
                source,
            })
        };
        if let Some(path) = args.get("events-out") {
            write(path, &telemetry.journal.to_jsonl())?;
            let _ = write!(notes, "\nwrote {path} ({} events)", telemetry.journal.len());
        }
        if let Some(path) = args.get("trace-out") {
            write(path, &telemetry.trace.to_chrome_json())?;
            let _ = write!(notes, "\nwrote {path} ({} spans)", telemetry.trace.len());
        }
        if let Some(path) = args.get("metrics-out") {
            let rendered = if path.ends_with(".json") {
                telemetry.metrics.to_json()
            } else {
                telemetry.render_summary()
            };
            write(path, &rendered)?;
            let _ = write!(notes, "\nwrote {path} ({} bytes)", rendered.len());
        }
        if let Some(path) = args.get("series-out") {
            let store = sampler.as_ref().expect("sampling enabled").store();
            write(path, &store.to_csv())?;
            let _ = write!(
                notes,
                "\nwrote {path} ({} series, {} points)",
                store.len(),
                store.total_points()
            );
        }
        if let Some(path) = args.get("prom-out") {
            let exposition = slackvm::telemetry::prometheus::render(
                &telemetry.metrics,
                sampler.as_ref().map(|s| s.store()),
            );
            write(path, &exposition)?;
            let _ = write!(notes, "\nwrote {path} ({} bytes)", exposition.len());
        }
        out
    } else {
        run_packing(&workload, &mut model)
    };
    Ok(format!(
        "model: {}\ncandidate index: {}\nPMs opened: {}\npeak alive VMs: {}\nrejections: {}/{}\n\
         unallocated at peak: cpu {:.1}%, mem {:.1}%\n\
         time-weighted unallocated: cpu {:.1}%, mem {:.1}%{notes}",
        out.model,
        index_mode.name(),
        out.opened_pms,
        out.peak_alive_vms,
        out.rejections,
        out.deployments,
        out.at_peak.unallocated_cpu * 100.0,
        out.at_peak.unallocated_mem * 100.0,
        out.mean_unallocated_cpu * 100.0,
        out.mean_unallocated_mem * 100.0,
    ))
}

/// `slackvm obs`
pub fn obs(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&["series", "prom", "gnuplot-out", "png-out"])?;
    if args.get("series").is_none() && args.get("prom").is_none() {
        return Err(CliError::MissingOption("series"));
    }
    let mut out = String::new();
    let mut store = None;
    if let Some(path) = args.get("series") {
        let raw = std::fs::read_to_string(path).map_err(|source| CliError::Io {
            path: path.to_string(),
            source,
        })?;
        let parsed = TimeSeriesStore::from_csv(&raw)
            .map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
        let _ = write!(
            out,
            "observatory — {path}: {} series, {} points\n\n{}",
            parsed.len(),
            parsed.total_points(),
            parsed.render_table()
        );
        store = Some((parsed, path));
    }
    if let Some(prom_path) = args.get("prom") {
        let exposition = std::fs::read_to_string(prom_path).map_err(|source| CliError::Io {
            path: prom_path.to_string(),
            source,
        })?;
        slackvm::telemetry::prometheus::validate(&exposition)
            .map_err(|e| CliError::Invalid(format!("{prom_path}: {e}")))?;
        if !out.is_empty() {
            out.push('\n');
        }
        let _ = write!(
            out,
            "{prom_path}: valid Prometheus exposition ({} lines)",
            exposition.lines().count()
        );
    }
    if let Some(script_path) = args.get("gnuplot-out") {
        let (store, path) = store
            .as_ref()
            .ok_or_else(|| CliError::Invalid("--gnuplot-out needs --series".into()))?;
        let png = args.get_or("png-out", "observatory.png");
        let script = slackvm_viz::gnuplot_script(store, path, png);
        std::fs::write(script_path, &script).map_err(|source| CliError::Io {
            path: script_path.to_string(),
            source,
        })?;
        let _ = write!(
            out,
            "\nwrote {script_path} ({} bytes; renders {png})",
            script.len()
        );
    }
    Ok(out)
}

/// `slackvm compact`
pub fn compact(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&["trace", "at-day"])?;
    let workload = load_trace(args)?;
    let at_day: u64 = args.get_parsed_or("at-day", 4)?;
    let mut pool = SharedDeployment::new(Arc::new(flat(32)), gib(128));
    for (time, event) in &workload.events {
        if *time > at_day * 86_400 {
            break;
        }
        match event {
            slackvm::workload::WorkloadEvent::Arrival(vm) => {
                pool.deploy(vm.id, vm.spec)
                    .map_err(|e| CliError::Invalid(format!("replay failed: {e}")))?;
            }
            slackvm::workload::WorkloadEvent::Departure { id } => {
                if pool.cluster.location_of(*id).is_some() {
                    pool.remove(*id)
                        .map_err(|e| CliError::Invalid(format!("replay failed: {e}")))?;
                }
            }
            slackvm::workload::WorkloadEvent::Resize { id, vcpus, mem_mib } => {
                let _ = pool.resize(*id, *vcpus, *mem_mib);
            }
        }
    }
    let snapshots: Vec<MachineSnapshot> =
        pool.cluster.hosts().iter().map(|h| h.snapshot()).collect();
    let plan = plan_compaction(&snapshots);
    Ok(format!(
        "state at day {at_day}: {} workers opened, {} active, {} VMs\n\
         compaction: {} migration(s) drain {} worker(s) ({:.1}% of fleet)",
        pool.cluster.opened(),
        pool.cluster.active(),
        pool.cluster.num_vms(),
        plan.moves.len(),
        plan.reclaimed_pms(),
        plan.reclaimed_pms() as f64 / pool.cluster.opened().max(1) as f64 * 100.0,
    ))
}

/// The migration cost budget from a `--max-migrations`-style flag
/// family; `keys` names the three flags in (migrations, moved-gib,
/// concurrent) order so `serve` can prefix them without clashing with
/// its other knobs.
fn rebalance_budget(
    args: &Args,
    keys: [&'static str; 3],
) -> Result<slackvm_rebalance::Budget, CliError> {
    let mut budget = slackvm_rebalance::Budget::default();
    budget.max_migrations = args.get_parsed_or(keys[0], budget.max_migrations)?;
    if let Some(moved_gib) = args.get_parsed::<u64>(keys[1])? {
        budget.max_moved_mem_mib = gib(moved_gib);
    }
    budget.max_concurrent = args.get_parsed_or(keys[2], budget.max_concurrent)?;
    budget
        .validate()
        .map_err(|e| CliError::Invalid(format!("rebalance budget: {e}")))?;
    Ok(budget)
}

/// `slackvm rebalance plan|apply`
pub fn rebalance(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&[
        "trace",
        "at",
        "model",
        "fleet",
        "topology",
        "mem",
        "policy",
        "index",
        "max-migrations",
        "max-moved-gib",
        "max-concurrent",
    ])?;
    let action = args.positionals.first().map(String::as_str).unwrap_or("plan");
    if !matches!(action, "plan" | "apply") {
        return Err(CliError::Invalid(format!(
            "unknown rebalance action {action:?} (plan, apply)"
        )));
    }
    // Budget and model flags are validated before the trace read, same
    // contract as `replay`.
    let budget = rebalance_budget(args, ["max-migrations", "max-moved-gib", "max-concurrent"])?;
    let mut model = trace_model(args)?;
    let at: Option<usize> = args.get_parsed("at")?;
    let workload = load_trace(args)?;
    let cutoff = at.unwrap_or(workload.events.len()).min(workload.events.len());
    // Replay the trace prefix with `replay` semantics: a rejected
    // placement is counted and skipped (its departure self-skips via
    // the location probe), never an error.
    let mut rejections = 0u32;
    for (_, event) in workload.events.iter().take(cutoff) {
        match event {
            slackvm::workload::WorkloadEvent::Arrival(vm) => {
                if model.deploy(vm.id, vm.spec).is_err() {
                    rejections += 1;
                }
            }
            slackvm::workload::WorkloadEvent::Departure { id } => {
                if model.location_of(*id).is_some() {
                    model
                        .remove(*id)
                        .map_err(|e| CliError::Invalid(format!("replay failed: {e}")))?;
                }
            }
            slackvm::workload::WorkloadEvent::Resize { id, vcpus, mem_mib } => {
                let _ = model.resize(*id, *vcpus, *mem_mib);
            }
        }
    }
    let mut out = format!(
        "state at event {cutoff}/{}: {} PMs opened, {} active, {} rejection(s)\n",
        workload.events.len(),
        model.opened_pms(),
        model.active_pms(),
        rejections,
    );
    let plan = slackvm_rebalance::plan_rebalance(&model, &budget)
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    out.push_str(&plan.render());
    match action {
        "plan" => {
            // Dry run: the JSON rendering rides below the human one so
            // scripts can split on the first '{'.
            out.push_str(&plan.to_json());
            out.push('\n');
        }
        _ => {
            let report = slackvm_rebalance::apply_plan(&mut model, &plan)
                .map_err(|e| CliError::Invalid(e.to_string()))?;
            model.check_invariants().map_err(|e| {
                CliError::Invalid(format!("post-apply invariant violation: {e}"))
            })?;
            out.push_str(&report.render());
            out.push('\n');
        }
    }
    Ok(out)
}

/// `slackvm pressure status|plan|apply`
///
/// Mirrors `rebalance`, but for the hotspot-mitigation plane: the trace
/// prefix is replayed, every placed VM gets the same synthesized usage
/// signal the serve tick derives from `--usage-seed`/`--hot-frac`, the
/// samples run through the estimator pipeline, and the resulting
/// demand drives the pressure report and (for plan/apply) a spread-out
/// mitigation plan under the migration budget.
pub fn pressure(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&[
        "trace",
        "at",
        "model",
        "fleet",
        "topology",
        "mem",
        "policy",
        "index",
        "max-migrations",
        "max-moved-gib",
        "max-concurrent",
        "usage-seed",
        "hot-frac",
    ])?;
    let action = args
        .positionals
        .first()
        .map(String::as_str)
        .unwrap_or("status");
    if !matches!(action, "status" | "plan" | "apply") {
        return Err(CliError::Invalid(format!(
            "unknown pressure action {action:?} (status, plan, apply)"
        )));
    }
    let budget = rebalance_budget(args, ["max-migrations", "max-moved-gib", "max-concurrent"])?;
    let usage_seed: u64 = args.get_parsed_or("usage-seed", 42)?;
    let hot_frac: f64 = args.get_parsed_or("hot-frac", 0.0)?;
    if !(0.0..=1.0).contains(&hot_frac) {
        return Err(CliError::Invalid(
            "--hot-frac must be within [0, 1]".into(),
        ));
    }
    let thresholds = slackvm_pressure::PressureConfig::default();
    let mut model = trace_model(args)?;
    let at: Option<usize> = args.get_parsed("at")?;
    let workload = load_trace(args)?;
    let cutoff = at.unwrap_or(workload.events.len()).min(workload.events.len());
    let mut rejections = 0u32;
    for (_, event) in workload.events.iter().take(cutoff) {
        match event {
            slackvm::workload::WorkloadEvent::Arrival(vm) => {
                if model.deploy(vm.id, vm.spec).is_err() {
                    rejections += 1;
                }
            }
            slackvm::workload::WorkloadEvent::Departure { id } => {
                if model.location_of(*id).is_some() {
                    model
                        .remove(*id)
                        .map_err(|e| CliError::Invalid(format!("replay failed: {e}")))?;
                }
            }
            slackvm::workload::WorkloadEvent::Resize { id, vcpus, mem_mib } => {
                let _ = model.resize(*id, *vcpus, *mem_mib);
            }
        }
    }
    // Feed the synthesized per-VM signal through the same estimator
    // pipeline the serve tick runs, so an offline `pressure apply`
    // plans exactly what the online tick would.
    let mut tracker =
        slackvm_pressure::UsageTracker::new(slackvm_pressure::EstimatorConfig::default());
    slackvm_pressure::observe_model(&mut tracker, &model, |vm| {
        slackvm_pressure::synth_frac(usage_seed, vm, hot_frac)
    });
    let usage = |vm| tracker.demand(vm);
    let mut out = format!(
        "state at event {cutoff}/{}: {} PMs opened, {} active, {} rejection(s)\n",
        workload.events.len(),
        model.opened_pms(),
        model.active_pms(),
        rejections,
    );
    if action == "status" {
        let report =
            slackvm_pressure::score_pressure(&model, &thresholds, &usage, &Default::default());
        out.push_str(&report.render());
        out.push_str(&report.to_json());
        out.push('\n');
        return Ok(out);
    }
    let plan = slackvm_pressure::plan_mitigation(&model, &thresholds, &budget, &usage)
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    out.push_str(&plan.render());
    match action {
        "plan" => {
            out.push_str(&plan.to_json());
            out.push('\n');
        }
        _ => {
            let report = slackvm_rebalance::apply_plan(&mut model, &plan.plan)
                .map_err(|e| CliError::Invalid(e.to_string()))?;
            model.check_invariants().map_err(|e| {
                CliError::Invalid(format!("post-apply invariant violation: {e}"))
            })?;
            let after = slackvm_pressure::score_pressure(
                &model,
                &thresholds,
                &usage,
                &Default::default(),
            );
            out.push_str(&report.render());
            let _ = writeln!(
                out,
                "\nafter: {} hot, {} warm, {} cold (peak score {:.2})",
                after.hot(),
                after.warm(),
                after.cold(),
                after.peak_score(),
            );
        }
    }
    Ok(out)
}

/// `slackvm sweep`
pub fn sweep(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&["provider", "mix", "population", "seed"])?;
    let what = args.positionals.first().map(String::as_str).unwrap_or("mc");
    let cat = provider(args)?;
    let mix = mix(args, "F")?;
    let config = packing_config(args)?;
    let mut out = String::new();
    match what {
        "mc" => {
            let _ = writeln!(out, "hardware M/C sweep ({} / mix {mix}):", cat.provider);
            for row in hardware_mc_sweep(&cat, &mix, &config, &[64, 96, 128, 192, 256]) {
                let _ = writeln!(
                    out,
                    "  {:>3} GiB (M/C {:>2.0}) -> baseline {:>3}, slackvm {:>3} ({:+.1}%)",
                    row.mem_gib,
                    row.target_ratio,
                    row.baseline_pms,
                    row.slackvm_pms,
                    row.savings_pct
                );
            }
        }
        "population" => {
            let _ = writeln!(out, "population sweep ({} / mix {mix}):", cat.provider);
            for row in population_sweep(&cat, &mix, &config, &[100, 250, 500, 1000]) {
                let _ = writeln!(
                    out,
                    "  {:>5} VMs -> baseline {:>3}, slackvm {:>3} ({:+.1}%)",
                    row.population, row.baseline_pms, row.slackvm_pms, row.savings_pct
                );
            }
        }
        "seeds" => {
            let stats = replicated_savings(&cat, &mix, &config, &[1, 2, 3, 4, 5, 6, 7, 8]);
            let _ = writeln!(
                out,
                "seed replication ({} runs): savings {:.1}% ± {:.1} (min {:.1}, max {:.1})",
                stats.runs, stats.mean, stats.std_dev, stats.min, stats.max
            );
        }
        other => {
            return Err(CliError::Invalid(format!(
                "unknown sweep {other:?} (mc, population, seeds)"
            )))
        }
    }
    Ok(out)
}

/// `slackvm calibrate`
pub fn calibrate_cmd(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&["targets", "step"])?;
    let targets = match args.get("targets") {
        None => slackvm::perf::CalibrationTargets::paper_table4(),
        Some(raw) => {
            // "b1,s1;b2,s2;b3,s3" — per-level baseline/slackvm medians.
            let medians: Result<Vec<(f64, f64)>, CliError> = raw
                .split(';')
                .map(|pair| {
                    let (b, s) = pair
                        .split_once(',')
                        .ok_or_else(|| CliError::Invalid(format!("bad target pair {pair:?}")))?;
                    let parse = |v: &str| {
                        v.trim()
                            .parse::<f64>()
                            .map_err(|_| CliError::Invalid(format!("bad target number {v:?}")))
                    };
                    Ok((parse(b)?, parse(s)?))
                })
                .collect();
            slackvm::perf::CalibrationTargets { medians: medians? }
        }
    };
    let step: u64 = args.get_parsed_or("step", 2400)?;
    let fit = slackvm::perf::calibrate(&targets, step);
    let mut out = format!(
        "fitted: base latency {:.2} ms, pressure coeff {:.1} (residual {:.4})\n",
        fit.base_latency_ms, fit.pressure_coeff, fit.residual
    );
    for (i, ((fb, fs), (tb, ts))) in fit.fitted_medians.iter().zip(&targets.medians).enumerate() {
        let _ = writeln!(
            out,
            "level {}: fitted {fb:.2} -> {fs:.2} ms (target {tb:.2} -> {ts:.2})",
            i + 1
        );
    }
    Ok(out)
}

/// `slackvm report`
pub fn report(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&["trace", "out"])?;
    let workload = load_trace(args)?;
    let markdown = experiments::trace_report(&workload, PmConfig::simulation_host());
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &markdown).map_err(|source| CliError::Io {
                path: path.to_string(),
                source,
            })?;
            Ok(format!("wrote {path} ({} bytes)", markdown.len()))
        }
        None => Ok(markdown),
    }
}

/// `slackvm layout`
pub fn layout(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&["topology", "mem"])?;
    let topo = slackvm::topology::topology_from_spec(args.get_or("topology", "cores=32"))
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    let mem = gib(args.get_parsed_or("mem", 128)?);
    let mut machine = PhysicalMachine::with_topology_policy(PmId(0), Arc::new(topo), mem);
    let mut out = String::new();
    for (i, raw) in args.positionals.iter().enumerate() {
        let spec: VmSpec = raw
            .parse()
            .map_err(|e: slackvm::model::ParseSpecError| CliError::Invalid(e.to_string()))?;
        machine
            .deploy(VmId(i as u64), spec)
            .map_err(|e| CliError::Invalid(format!("cannot place {raw:?}: {e}")))?;
    }
    let _ = writeln!(out, "{}", slackvm::hypervisor::render_layout(&machine));
    for vnode in machine.vnodes() {
        if let Some(vt) = machine.virtual_topology(vnode.level()) {
            let _ = writeln!(out, "  {} virtual topology: {}", vnode.level(), vt);
        }
    }
    Ok(out)
}

/// `slackvm scenarios`
pub fn scenarios(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&["population", "seed", "run"])?;
    let population: u32 = args.get_parsed_or("population", 300)?;
    let seed: u64 = args.get_parsed_or("seed", 0x70)?;
    let mut out = String::new();
    for scenario in slackvm::workload::scenarios::all(population) {
        if let Some(name) = args.get("run") {
            if name != scenario.name {
                continue;
            }
        }
        let workload = scenario.generate(seed);
        let stats = slackvm::workload::TraceStats::of(&workload)
            .ok_or_else(|| CliError::Invalid(format!("{} generated nothing", scenario.name)))?;
        let mut baseline = DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::simulation_host(),
            scenario.mix.levels(),
        ));
        let base = run_packing(&workload, &mut baseline);
        let mut shared =
            DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)));
        let slack = run_packing(&workload, &mut shared);
        let _ = writeln!(
            out,
            "{:<20} {:<62} {:>5} arrivals, baseline {:>3} PMs, slackvm {:>3} PMs ({:+.1}%)",
            scenario.name,
            scenario.description,
            stats.arrivals,
            base.opened_pms,
            slack.opened_pms,
            slack.savings_vs(&base),
        );
    }
    if out.is_empty() {
        return Err(CliError::Invalid(format!(
            "no scenario named {:?}",
            args.get("run").unwrap_or("")
        )));
    }
    Ok(out)
}

/// `slackvm steady`
pub fn steady(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&["trace", "model", "svg", "series-out", "sample-interval"])?;
    let workload = load_trace(args)?;
    let mut model = match args.get_or("model", "shared") {
        "dedicated" => DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::simulation_host(),
            [
                OversubLevel::of(1),
                OversubLevel::of(2),
                OversubLevel::of(3),
            ],
        )),
        "shared" => DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128))),
        other => {
            return Err(CliError::Invalid(format!(
                "unknown model {other:?} (dedicated, shared)"
            )))
        }
    };
    let mut samples = Vec::new();
    slackvm::sim::run_packing_with_samples(&workload, &mut model, Some(&mut samples));
    let summary = slackvm::sim::analyze_steady_state(&samples)
        .ok_or_else(|| CliError::Invalid("trace too short for steady-state analysis".into()))?;
    let mut out = format!(
        "samples: {} (warm-up {} up to t={:.2} d)\n\
         steady region: {} samples\n\
         mean population: {:.1}\n\
         mean unallocated: cpu {:.1}%, mem {:.1}%",
        samples.len(),
        summary.warmup_samples,
        summary.warmup_end_secs as f64 / 86_400.0,
        summary.steady_samples,
        summary.mean_population,
        summary.mean_unallocated_cpu * 100.0,
        summary.mean_unallocated_mem * 100.0,
    );
    if let Some(note) = write_svg(
        args,
        slackvm_viz::occupancy_svg(&samples, "occupancy time series"),
    )? {
        let _ = writeln!(out, "\n{note}");
    }
    if let Some(path) = args.get("series-out") {
        let interval: u64 = args.get_parsed_or("sample-interval", 3600)?;
        let store = store_from_samples(&samples, interval);
        std::fs::write(path, store.to_csv()).map_err(|source| CliError::Io {
            path: path.to_string(),
            source,
        })?;
        let _ = write!(
            out,
            "\nwrote {path} ({} series, {} points)",
            store.len(),
            store.total_points()
        );
    }
    Ok(out)
}

/// `slackvm recommend`
pub fn recommend(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&[
        "vcpus",
        "level",
        "demand",
        "quantile",
        "margin",
        "max-level",
    ])?;
    let vcpus: u32 = args
        .get_parsed("vcpus")?
        .ok_or(CliError::MissingOption("vcpus"))?;
    let level: u32 = args.get_parsed_or("level", 1)?;
    let level = OversubLevel::new(level).map_err(|e| CliError::Invalid(e.to_string()))?;
    let demand_raw = args
        .get("demand")
        .ok_or(CliError::MissingOption("demand"))?;
    let demand: Vec<f64> = demand_raw
        .split(',')
        .map(|d| d.trim().parse::<f64>())
        .collect::<Result<_, _>>()
        .map_err(|_| CliError::Invalid(format!("cannot parse demand series {demand_raw:?}")))?;
    let config = slackvm::hypervisor::DynamicLevelConfig {
        peak_quantile: args.get_parsed_or("quantile", 0.98)?,
        safety_margin: args.get_parsed_or("margin", 1.25)?,
        max_level: args.get_parsed_or("max-level", 8)?,
    };
    let rec = slackvm::hypervisor::recommend_level(&demand, vcpus, level, &config);
    Ok(format!(
        "vNode: {} vCPUs at {}\npeak demand (q{:.2}): {:.2} cores\n\
         recommendation: {} ({} -> {} cores, {} freed)",
        vcpus,
        rec.current,
        config.peak_quantile,
        rec.peak_demand_cores,
        rec.recommended,
        rec.cores_now,
        rec.cores_after,
        rec.cores_freed(),
    ))
}

/// The serve/bombard options that shape the per-shard deployment model.
fn serve_model_spec(args: &Args) -> Result<slackvm_serve::ModelSpec, CliError> {
    let topology = args.get_or("topology", "cores=32").to_string();
    let mem_mib = gib(args.get_parsed_or("mem", 128)?);
    match args.get_or("model", "shared") {
        "shared" => {
            let policy = args.get_or("policy", "progress+bestfit");
            parse_policy(policy)?;
            Ok(slackvm_serve::ModelSpec::Shared {
                topology,
                mem_mib,
                policy: policy.to_string(),
                fleet_cap: args.get_parsed("fleet")?,
            })
        }
        "dedicated" => {
            if args.get("policy").is_some() {
                return Err(CliError::Invalid(
                    "--policy applies to the shared model only (dedicated packs first-fit per level)"
                        .into(),
                ));
            }
            Ok(slackvm_serve::ModelSpec::Dedicated { topology, mem_mib })
        }
        other => Err(CliError::Invalid(format!(
            "unknown model {other:?} (dedicated, shared)"
        ))),
    }
}

/// The `--state-dir` family of durability options. The satellite flags
/// are an error without `--state-dir` — silently ignoring an fsync
/// policy the operator asked for would be worse than rejecting it.
fn serve_durable(args: &Args) -> Result<Option<slackvm_serve::DurableOptions>, CliError> {
    let Some(dir) = args.get("state-dir") else {
        for key in ["fsync", "fsync-interval-ms", "snapshot-every", "retain"] {
            if args.get(key).is_some() {
                return Err(CliError::Invalid(format!("--{key} requires --state-dir")));
            }
        }
        return Ok(None);
    };
    let fsync_raw = args.get_or("fsync", "every");
    let interval_ms = args.get_parsed_or("fsync-interval-ms", 50)?;
    let fsync = slackvm_serve::FsyncPolicy::parse(fsync_raw, interval_ms).ok_or_else(|| {
        CliError::Invalid(format!(
            "unknown fsync policy {fsync_raw:?} (every, interval, off)"
        ))
    })?;
    let mut opts = slackvm_serve::DurableOptions::new(dir);
    opts.fsync = fsync;
    opts.snapshot_every = args.get_parsed_or("snapshot-every", 8192)?;
    opts.retain = args.get_parsed_or("retain", 3)?;
    Ok(Some(opts))
}

/// The request-tracing level. `--trace-sample N` upgrades the default
/// stage-stamping level to full lifecycle sampling; `--trace off`
/// removes even the per-batch clock reads from the hot path. A
/// `--trace-out` without sampling is an error — no spans would ever be
/// recorded, and an empty trace file the operator asked for would look
/// like a bug downstream.
fn serve_trace(args: &Args) -> Result<slackvm_serve::TraceLevel, CliError> {
    let sample = args.get_parsed::<u64>("trace-sample")?;
    if args.get("trace-out").is_some() && sample.is_none() {
        return Err(CliError::Invalid(
            "--trace-out requires --trace-sample (nothing records spans otherwise)".into(),
        ));
    }
    match (args.get_or("trace", "stages"), sample) {
        ("off", None) => Ok(slackvm_serve::TraceLevel::Off),
        ("off", Some(_)) => Err(CliError::Invalid(
            "--trace-sample conflicts with --trace off".into(),
        )),
        ("stages", None) => Ok(slackvm_serve::TraceLevel::Stages),
        ("stages", Some(every)) => Ok(slackvm_serve::TraceLevel::Sampled { every }),
        (other, _) => Err(CliError::Invalid(format!(
            "unknown trace level {other:?} (off, stages; add --trace-sample N for spans)"
        ))),
    }
}

/// SLO targets for the `/slo` scorecard, defaulting to the library's
/// targets; bounds are validated by the service config.
fn serve_slo(args: &Args) -> Result<slackvm_serve::SloTargets, CliError> {
    let mut slo = slackvm_serve::SloTargets::default();
    if let Some(window) = args.get_parsed("slo-window-s")? {
        slo.window_secs = window;
    }
    if let Some(p99_ms) = args.get_parsed::<u64>("slo-p99-ms")? {
        slo.p99_us = p99_ms.saturating_mul(1000);
    }
    if let Some(availability) = args.get_parsed("slo-availability")? {
        slo.availability = availability;
    }
    Ok(slo)
}

/// The `--rebalance-every-ms` family of background-consolidation
/// options. As with `--state-dir`, the budget satellites are an error
/// without the enabling flag — a budget the operator tuned for a tick
/// that never runs is a typo, not a configuration.
fn serve_rebalance(args: &Args) -> Result<Option<slackvm_serve::RebalanceOptions>, CliError> {
    let Some(every_ms) = args.get_parsed::<u64>("rebalance-every-ms")? else {
        for key in [
            "rebalance-max-migrations",
            "rebalance-max-moved-gib",
            "rebalance-max-concurrent",
        ] {
            if args.get(key).is_some() {
                return Err(CliError::Invalid(format!(
                    "--{key} requires --rebalance-every-ms"
                )));
            }
        }
        return Ok(None);
    };
    if every_ms == 0 {
        return Err(CliError::Invalid(
            "--rebalance-every-ms must be >= 1 (omit the flag to disable rebalancing)".into(),
        ));
    }
    let budget = rebalance_budget(
        args,
        [
            "rebalance-max-migrations",
            "rebalance-max-moved-gib",
            "rebalance-max-concurrent",
        ],
    )?;
    Ok(Some(slackvm_serve::RebalanceOptions {
        every: std::time::Duration::from_millis(every_ms),
        budget,
    }))
}

/// The `--pressure-every-ms` family of hotspot-mitigation options,
/// with the same satellites-require-the-enabling-flag contract as
/// `serve_rebalance`.
fn serve_pressure(args: &Args) -> Result<Option<slackvm_serve::PressureOptions>, CliError> {
    let Some(every_ms) = args.get_parsed::<u64>("pressure-every-ms")? else {
        for key in [
            "pressure-max-migrations",
            "pressure-max-moved-gib",
            "pressure-max-concurrent",
            "pressure-usage-seed",
            "pressure-hot-frac",
        ] {
            if args.get(key).is_some() {
                return Err(CliError::Invalid(format!(
                    "--{key} requires --pressure-every-ms"
                )));
            }
        }
        return Ok(None);
    };
    if every_ms == 0 {
        return Err(CliError::Invalid(
            "--pressure-every-ms must be >= 1 (omit the flag to disable mitigation)".into(),
        ));
    }
    let budget = rebalance_budget(
        args,
        [
            "pressure-max-migrations",
            "pressure-max-moved-gib",
            "pressure-max-concurrent",
        ],
    )?;
    let mut opts = slackvm_serve::PressureOptions::default();
    opts.every = std::time::Duration::from_millis(every_ms);
    opts.budget = budget;
    opts.usage_seed = args.get_parsed_or("pressure-usage-seed", opts.usage_seed)?;
    opts.hot_frac = args.get_parsed_or("pressure-hot-frac", opts.hot_frac)?;
    Ok(Some(opts))
}

/// The serve/bombard options that shape the service itself.
fn serve_config(args: &Args) -> Result<slackvm_serve::ServeConfig, CliError> {
    let index_raw = args.get_or("index", "incremental");
    let index = IndexMode::parse(index_raw).ok_or_else(|| {
        CliError::Invalid(format!(
            "unknown index mode {index_raw:?} (naive, incremental)"
        ))
    })?;
    Ok(slackvm_serve::ServeConfig {
        shards: args.get_parsed_or("shards", 1)?,
        queue_depth: args.get_parsed_or("queue-depth", 1024)?,
        batch_max: args.get_parsed_or("batch", 64)?,
        deadline: args
            .get_parsed::<u64>("deadline-ms")?
            .map(std::time::Duration::from_millis),
        deterministic: false,
        model: serve_model_spec(args)?,
        index,
        sample_interval_ms: args.get_parsed("sample-interval-ms")?,
        durable: serve_durable(args)?,
        durable_fail_stop: args.has_flag("durable-fail-stop"),
        rebalance: serve_rebalance(args)?,
        pressure: serve_pressure(args)?,
        trace: serve_trace(args)?,
        stall_threshold: std::time::Duration::from_millis(args.get_parsed_or("stall-ms", 2000)?),
        slo: serve_slo(args)?,
    })
}

/// `slackvm serve`
pub fn serve(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&[
        "addr",
        "port",
        "shards",
        "queue-depth",
        "batch",
        "deadline-ms",
        "model",
        "policy",
        "fleet",
        "index",
        "topology",
        "mem",
        "sample-interval-ms",
        "state-dir",
        "fsync",
        "fsync-interval-ms",
        "snapshot-every",
        "retain",
        "durable-fail-stop",
        "rebalance-every-ms",
        "rebalance-max-migrations",
        "rebalance-max-moved-gib",
        "rebalance-max-concurrent",
        "pressure-every-ms",
        "pressure-max-migrations",
        "pressure-max-moved-gib",
        "pressure-max-concurrent",
        "pressure-usage-seed",
        "pressure-hot-frac",
        "obs-addr",
        "stall-ms",
        "trace",
        "trace-sample",
        "trace-out",
        "slo-window-s",
        "slo-p99-ms",
        "slo-availability",
    ])?;
    let config = serve_config(args)?;
    let addr = match args.get("addr") {
        Some(addr) => addr.to_string(),
        None => format!("127.0.0.1:{}", args.get_parsed_or::<u16>("port", 7070)?),
    };
    let service = slackvm_serve::PlacementService::start(config)
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    for r in service.recovery_reports() {
        eprintln!(
            "slackvm serve: shard {} recovered (snapshot {}, replayed {} records, torn {} B) in {} ms",
            r.shard,
            r.snapshot_seq.map_or_else(|| "none".into(), |s| s.to_string()),
            r.records_replayed,
            r.truncated_bytes,
            r.elapsed.as_millis(),
        );
    }
    // The observability plane binds before the request listener: a
    // health probe must be answerable the moment traffic can arrive.
    let obs = match args.get("obs-addr") {
        Some(obs_addr) => {
            let server = slackvm_serve::ObsServer::start(obs_addr, service.obs_handle())
                .map_err(|e| CliError::Invalid(format!("cannot bind obs {obs_addr}: {e}")))?;
            eprintln!("slackvm serve: observability on {}", server.local_addr());
            Some(server)
        }
        None => None,
    };
    let server = slackvm_serve::TcpServer::bind(&addr, service)
        .map_err(|e| CliError::Invalid(format!("cannot bind {addr}: {e}")))?;
    let local = server
        .local_addr()
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    // Announce readiness before the blocking accept loop so scripts can
    // start bombarding as soon as this line appears.
    eprintln!("slackvm serve: listening on {local}");
    let (stats, report) = server.run().map_err(|e| CliError::Invalid(e.to_string()))?;
    report
        .check_invariants()
        .map_err(|e| CliError::Invalid(format!("post-shutdown invariant violation: {e}")))?;
    let mut out = format!(
        "serve: shutdown after {} connections, {} requests ({} bad lines)\n\
         admitted {}  rejected {}  shed {}  PMs opened {}",
        stats.connections,
        stats.requests,
        stats.bad_lines,
        report.admitted(),
        report.rejected(),
        report.shed(),
        report.opened_pms(),
    );
    if let Some(obs) = obs {
        let _ = write!(out, "\nobs: served {} scrapes", obs.stop());
    }
    if let Some(path) = args.get("trace-out") {
        let json = report
            .trace_json
            .as_deref()
            .expect("--trace-out validated to require --trace-sample");
        std::fs::write(path, json).map_err(|source| CliError::Io {
            path: path.to_string(),
            source,
        })?;
        let _ = write!(out, "\nwrote {path} ({} bytes)", json.len());
    }
    let slow = report.render_slow_requests();
    if !slow.is_empty() {
        let _ = write!(out, "\nslowest sampled requests:\n{slow}");
    }
    Ok(out)
}

/// One-shot HTTP GET against the serve frontend, returning the
/// Prometheus exposition body.
fn fetch_metrics(addr: &str) -> Result<String, CliError> {
    use std::io::{Read as _, Write as _};
    let io_err = |source: std::io::Error| CliError::Io {
        path: addr.to_string(),
        source,
    };
    let mut stream = std::net::TcpStream::connect(addr).map_err(io_err)?;
    write!(stream, "GET /metrics HTTP/1.0\r\n\r\n").map_err(io_err)?;
    stream.flush().map_err(io_err)?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(io_err)?;
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .ok_or_else(|| CliError::Invalid(format!("malformed metrics response from {addr}")))
}

/// `slackvm bombard`
pub fn bombard(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&[
        "addr",
        "scenario",
        "population",
        "seed",
        "clients",
        "requests",
        "rate",
        "shards",
        "queue-depth",
        "batch",
        "deadline-ms",
        "model",
        "policy",
        "fleet",
        "index",
        "topology",
        "mem",
        "series-out",
        "prom-out",
        "sample-interval-ms",
        "shutdown",
        "trace",
        "trace-sample",
        "trace-out",
        "stall-ms",
        "slo-window-s",
        "slo-p99-ms",
        "slo-availability",
        "rebalance-every-ms",
        "rebalance-max-migrations",
        "rebalance-max-moved-gib",
        "rebalance-max-concurrent",
        "pressure-every-ms",
        "pressure-max-migrations",
        "pressure-max-moved-gib",
        "pressure-max-concurrent",
        "pressure-usage-seed",
        "pressure-hot-frac",
        "chaos-fail-every",
        "hot-frac",
        "usage-seed",
    ])?;
    let hot_frac: f64 = args.get_parsed_or("hot-frac", 0.0)?;
    if !(0.0..=1.0).contains(&hot_frac) {
        return Err(CliError::Invalid(
            "--hot-frac must be within [0, 1]".into(),
        ));
    }
    let config = slackvm_serve::BombardConfig {
        scenario: args.get_or("scenario", "paper-week-f").to_string(),
        population: args.get_parsed_or("population", 200)?,
        seed: args.get_parsed_or("seed", 42)?,
        clients: args.get_parsed_or("clients", 4)?,
        requests: args.get_parsed_or("requests", 10_000)?,
        chaos_fail_every: args.get_parsed("chaos-fail-every")?,
        hot_frac,
        usage_seed: args.get_parsed_or("usage-seed", 42)?,
    };
    let invalid = |e: slackvm_serve::ServeError| CliError::Invalid(e.to_string());
    let write = |path: &str, content: &str| -> Result<(), CliError> {
        std::fs::write(path, content).map_err(|source| CliError::Io {
            path: path.to_string(),
            source,
        })
    };
    let mut out = String::new();

    if let Some(addr) = args.get("addr") {
        // Remote mode: drive the TCP frontend of a running server.
        if args.get("rate").is_some() || args.get("series-out").is_some() {
            return Err(CliError::Invalid(
                "--rate and --series-out apply to in-process bombard only (drop --addr)".into(),
            ));
        }
        // Tracing and SLO targets belong to the server process; a
        // remote bombard cannot set them and must not pretend to.
        for key in [
            "trace",
            "trace-sample",
            "trace-out",
            "stall-ms",
            "slo-window-s",
            "slo-p99-ms",
            "slo-availability",
            "rebalance-every-ms",
            "rebalance-max-migrations",
            "rebalance-max-moved-gib",
            "rebalance-max-concurrent",
            "pressure-every-ms",
            "pressure-max-migrations",
            "pressure-max-moved-gib",
            "pressure-max-concurrent",
            "pressure-usage-seed",
            "pressure-hot-frac",
        ] {
            if args.get(key).is_some() {
                return Err(CliError::Invalid(format!(
                    "--{key} configures the service, not the client — \
                     pass it to `slackvm serve` (or drop --addr)"
                )));
            }
        }
        if config.requests > 0 {
            let report = slackvm_serve::run_tcp(addr, &config).map_err(invalid)?;
            out.push_str(&report.render());
        } else {
            out.push_str("bombard: no requests sent\n");
        }
        if let Some(path) = args.get("prom-out") {
            let exposition = fetch_metrics(addr)?;
            write(path, &exposition)?;
            let _ = writeln!(out, "wrote {path} ({} bytes)", exposition.len());
        }
        if args.has_flag("shutdown") {
            use std::io::{BufRead as _, BufReader, Write as _};
            let io_err = |source: std::io::Error| CliError::Io {
                path: addr.to_string(),
                source,
            };
            let stream = std::net::TcpStream::connect(addr).map_err(io_err)?;
            let mut writer = stream.try_clone().map_err(io_err)?;
            writeln!(writer, "{{\"op\":\"shutdown\"}}").map_err(io_err)?;
            writer.flush().map_err(io_err)?;
            let mut ack = String::new();
            BufReader::new(stream).read_line(&mut ack).map_err(io_err)?;
            out.push_str("sent shutdown\n");
        }
        return Ok(out);
    }

    // In-process mode: start a service, bombard it, report, tear down.
    if args.has_flag("shutdown") {
        return Err(CliError::Invalid(
            "--shutdown needs --addr (the in-process service always stops at the end)".into(),
        ));
    }
    let mut service_config = serve_config(args)?;
    if args.get("series-out").is_some() && service_config.sample_interval_ms.is_none() {
        service_config.sample_interval_ms = Some(50);
    }
    let service = slackvm_serve::PlacementService::start(service_config).map_err(invalid)?;
    let report = match args.get_parsed::<f64>("rate")? {
        Some(rate) => slackvm_serve::run_open_loop(&service, &config, rate),
        None => slackvm_serve::run_closed_loop(&service, &config),
    }
    .map_err(invalid)?;
    out.push_str(&report.render());
    if let Some(path) = args.get("prom-out") {
        let exposition = service.metrics_exposition();
        write(path, &exposition)?;
        let _ = writeln!(out, "wrote {path} ({} bytes)", exposition.len());
    }
    if let Some(path) = args.get("series-out") {
        let csv = service
            .series_csv()
            .ok_or_else(|| CliError::Invalid("sampler produced no series".into()))?;
        write(path, &csv)?;
        let _ = writeln!(out, "wrote {path} ({} bytes)", csv.len());
    }
    let final_report = service.stop();
    final_report
        .check_invariants()
        .map_err(|e| CliError::Invalid(format!("post-run invariant violation: {e}")))?;
    if let Some(path) = args.get("trace-out") {
        let json = final_report
            .trace_json
            .as_deref()
            .expect("--trace-out validated to require --trace-sample");
        write(path, json)?;
        let _ = writeln!(out, "wrote {path} ({} bytes)", json.len());
    }
    let _ = write!(
        out,
        "final: admitted {}  rejected {}  shed {}  PMs opened {}",
        final_report.admitted(),
        final_report.rejected(),
        final_report.shed(),
        final_report.opened_pms(),
    );
    let slow = final_report.render_slow_requests();
    if !slow.is_empty() {
        let _ = write!(out, "\nslowest sampled requests:\n{slow}");
    }
    Ok(out)
}

/// Reads a state directory's manifest and rebuilds what each shard's
/// worker starts from: an empty model shaped by the manifest, with the
/// manifest's candidate-index mode applied.
fn durable_models(
    dir: &std::path::Path,
) -> Result<(slackvm_durable::Manifest, Vec<DeploymentModel>), CliError> {
    let manifest =
        slackvm_durable::Manifest::load(dir).map_err(|e| CliError::Invalid(e.to_string()))?;
    let spec = slackvm_serve::ModelSpec::from_manifest_model(&manifest.model);
    let index = IndexMode::parse(&manifest.index).ok_or_else(|| {
        CliError::Invalid(format!(
            "manifest names unknown index mode {:?}",
            manifest.index
        ))
    })?;
    let models = (0..manifest.shards)
        .map(|_| {
            let mut model = spec
                .build(manifest.shards)
                .map_err(|e| CliError::Invalid(e.to_string()))?;
            model.set_index_mode(index);
            Ok(model)
        })
        .collect::<Result<Vec<_>, CliError>>()?;
    Ok((manifest, models))
}

/// `slackvm recover`
pub fn recover(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&["dir"])?;
    let dir = std::path::Path::new(args.get("dir").ok_or(CliError::MissingOption("dir"))?);
    let (manifest, models) = durable_models(dir)?;
    let mut out = format!(
        "recover {}: {} shard(s), model {}, index {}\n",
        dir.display(),
        manifest.shards,
        manifest.model.name(),
        manifest.index,
    );
    for (shard, mut model) in models.into_iter().enumerate() {
        let report = slackvm_durable::recover_shard(dir, shard as u32, &mut model)
            .map_err(|e| CliError::Invalid(format!("shard {shard}: {e}")))?;
        let state = model.capture_state();
        let _ = writeln!(
            out,
            "  shard {shard}: {} VMs on {} PMs  snapshot {}  replayed {}/{} records  \
             wal {} B  torn {} B  last seq {}  ({} ms)",
            state.placements().count(),
            state.opened_pms(),
            report
                .snapshot_seq
                .map_or_else(|| "none".to_string(), |seq| format!("seq {seq}")),
            report.records_replayed,
            report.records_total,
            report.wal_bytes,
            report.truncated_bytes,
            report.last_seq,
            report.elapsed.as_millis(),
        );
    }
    Ok(out)
}

/// `slackvm fsck`
pub fn fsck(args: &Args) -> Result<String, CliError> {
    args.expect_keys(&["dir"])?;
    let dir = std::path::Path::new(args.get("dir").ok_or(CliError::MissingOption("dir"))?);
    let (manifest, models) = durable_models(dir)?;
    // One fresh model per shard for the genesis replay, beyond the one
    // recover_shard restores into.
    let (_, fresh_models) = durable_models(dir)?;
    let mut out = format!("fsck {}: {} shard(s)\n", dir.display(), manifest.shards);
    let mut broken = Vec::new();
    for ((shard, mut model), mut fresh) in models.into_iter().enumerate().zip(fresh_models) {
        slackvm_durable::recover_shard(dir, shard as u32, &mut model)
            .map_err(|e| CliError::Invalid(format!("shard {shard}: {e}")))?;
        let report = slackvm_durable::fsck_shard(dir, shard as u32, &model, &mut fresh)
            .map_err(|e| CliError::Invalid(format!("shard {shard}: {e}")))?;
        if report.ok() {
            let _ = writeln!(
                out,
                "  shard {shard}: OK  {} records re-derived, {} torn bytes discarded",
                report.records_checked, report.truncated_bytes,
            );
        } else {
            for m in &report.mismatches {
                let _ = writeln!(out, "  shard {shard}: MISMATCH  {m}");
            }
            broken.push(shard.to_string());
        }
    }
    if broken.is_empty() {
        out.push_str("fsck: clean — recovered state matches the committed history\n");
        Ok(out)
    } else {
        Err(CliError::Invalid(format!(
            "{out}fsck: shard(s) {} diverge from the committed history",
            broken.join(", ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tokens: &[&str]) -> Result<String, CliError> {
        crate::run(&Args::parse(tokens.to_vec()).unwrap())
    }

    #[test]
    fn tables_renders_both_providers() {
        let out = run(&["tables"]).unwrap();
        assert!(out.contains("azure"));
        assert!(out.contains("ovhcloud"));
        assert!(out.contains("Table III"));
    }

    #[test]
    fn fig3_requires_a_provider() {
        let err = run(&["fig3"]).unwrap_err();
        assert!(matches!(err, CliError::MissingOption("provider")));
        let err = run(&["fig3", "--provider", "gcp"]).unwrap_err();
        assert!(err.to_string().contains("gcp"));
    }

    #[test]
    fn fig3_small_run_produces_fifteen_rows() {
        let out = run(&["fig3", "--provider", "azure", "--population", "60"]).unwrap();
        for letter in 'A'..='O' {
            assert!(
                out.contains(&format!("| {letter} ")),
                "row {letter} missing:\n{out}"
            );
        }
    }

    #[test]
    fn fig4_grid_step_is_validated() {
        let err = run(&["fig4", "--provider", "azure", "--grid-step", "30"]).unwrap_err();
        assert!(err.to_string().contains("divide 100"));
    }

    #[test]
    fn generate_and_replay_roundtrip_through_a_file() {
        let dir = std::env::temp_dir().join("slackvm-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let path_str = path.to_str().unwrap();
        let out = run(&[
            "generate",
            "--provider",
            "ovhcloud",
            "--mix",
            "F",
            "--population",
            "40",
            "--days",
            "2",
            "--out",
            path_str,
        ])
        .unwrap();
        assert!(out.contains("wrote"));
        let replayed = run(&["replay", "--trace", path_str, "--model", "shared"]).unwrap();
        assert!(replayed.contains("PMs opened"));
        assert!(replayed.contains("rejections: 0/"));
        let dedicated = run(&["replay", "--trace", path_str, "--model", "dedicated"]).unwrap();
        assert!(dedicated.contains("dedicated/first-fit"));
        let compacted = run(&["compact", "--trace", path_str, "--at-day", "1"]).unwrap();
        assert!(compacted.contains("compaction:"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_index_modes_agree_and_are_validated() {
        let dir = std::env::temp_dir().join("slackvm-cli-index");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let path_str = path.to_str().unwrap();
        run(&[
            "generate",
            "--provider",
            "azure",
            "--mix",
            "F",
            "--population",
            "40",
            "--days",
            "2",
            "--out",
            path_str,
        ])
        .unwrap();
        for model in ["shared", "dedicated"] {
            let incr = run(&[
                "replay",
                "--trace",
                path_str,
                "--model",
                model,
                "--index",
                "incremental",
            ])
            .unwrap();
            let naive = run(&[
                "replay", "--trace", path_str, "--model", model, "--index", "naive",
            ])
            .unwrap();
            assert!(incr.contains("candidate index: incremental"));
            assert!(naive.contains("candidate index: naive"));
            // Identical packing outcome — only the index label differs.
            let strip = |s: &str| {
                s.lines()
                    .filter(|l| !l.starts_with("candidate index:"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(strip(&incr), strip(&naive));
        }
        let err = run(&[
            "replay", "--trace", path_str, "--model", "shared", "--index", "hashed",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("unknown index mode"));

        // A selectable policy shows up in the model label.
        let out = run(&[
            "replay", "--trace", path_str, "--model", "shared", "--policy", "best-fit",
        ])
        .unwrap();
        assert!(out.contains("best-fit"), "policy not applied:\n{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generate_accepts_numeric_mixes() {
        let out = run(&[
            "generate",
            "--provider",
            "azure",
            "--mix",
            "50,25,25",
            "--population",
            "20",
            "--days",
            "1",
        ])
        .unwrap();
        assert!(out.contains("generated"));
        let err = run(&["generate", "--provider", "azure", "--mix", "50,50"]).unwrap_err();
        assert!(err.to_string().contains("three shares"));
    }

    #[test]
    fn replay_with_telemetry_flags_writes_all_three_artifacts() {
        let dir = std::env::temp_dir().join("slackvm-cli-telemetry");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.json");
        run(&[
            "generate",
            "--provider",
            "azure",
            "--mix",
            "F",
            "--population",
            "50",
            "--days",
            "2",
            "--out",
            trace_path.to_str().unwrap(),
        ])
        .unwrap();
        let events = dir.join("events.jsonl");
        let chrome = dir.join("trace-events.json");
        let metrics = dir.join("metrics.json");
        let out = run(&[
            "replay",
            "--trace",
            trace_path.to_str().unwrap(),
            "--events-out",
            events.to_str().unwrap(),
            "--trace-out",
            chrome.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("events)"), "no journal note:\n{out}");
        assert!(out.contains("spans)"), "no trace note:\n{out}");

        // The journal is non-empty JSONL that parses back to typed records.
        let jsonl = std::fs::read_to_string(&events).unwrap();
        let journal = slackvm::telemetry::Journal::from_jsonl(&jsonl).unwrap();
        assert!(!journal.is_empty());

        // The Chrome trace is valid JSON with a traceEvents array.
        let chrome_raw = std::fs::read_to_string(&chrome).unwrap();
        let chrome_json: serde_json::Value = serde_json::from_str(&chrome_raw).unwrap();
        assert!(!chrome_json["traceEvents"].as_array().unwrap().is_empty());

        // Metrics counters agree with both the journal and the printed
        // outcome (a zero-rejection replay of a validated trace).
        let summary: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        let deployments = summary["counters"]["sim.deployments"].as_u64().unwrap();
        assert_eq!(journal.count_kind("vm_arrival") as u64, deployments);
        assert_eq!(
            summary["counters"]["sim.rejections"].as_u64().unwrap_or(0),
            0
        );
        assert!(out.contains(&format!("rejections: 0/{deployments}")));
        assert_eq!(
            journal.count_kind("vm_placed") as u64,
            summary["counters"]["events.vm_placed"].as_u64().unwrap()
        );

        // A text metrics summary is written when the path is not .json.
        let metrics_txt = dir.join("metrics.txt");
        run(&[
            "replay",
            "--trace",
            trace_path.to_str().unwrap(),
            "--metrics-out",
            metrics_txt.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&metrics_txt).unwrap();
        assert!(text.contains("counters:"));
        assert!(text.contains("sim.deployments"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sampling_replay_feeds_the_obs_dashboard() {
        let dir = std::env::temp_dir().join("slackvm-cli-obs");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        let trace_str = trace.to_str().unwrap();
        run(&[
            "generate",
            "--provider",
            "azure",
            "--mix",
            "F",
            "--population",
            "50",
            "--days",
            "2",
            "--out",
            trace_str,
        ])
        .unwrap();
        let series = dir.join("series.csv");
        let prom = dir.join("metrics.prom");
        let out = run(&[
            "replay",
            "--trace",
            trace_str,
            "--sample-interval",
            "7200",
            "--series-out",
            series.to_str().unwrap(),
            "--prom-out",
            prom.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("series,"), "no series note:\n{out}");

        // The CSV holds a real multi-series trajectory.
        let csv = std::fs::read_to_string(&series).unwrap();
        let store = TimeSeriesStore::from_csv(&csv).unwrap();
        assert!(store.len() >= 5, "only {} series", store.len());
        for name in [
            "cluster.cpu_utilization",
            "cluster.fragmentation",
            "cluster.active_pms",
            "cluster.alive_vms",
        ] {
            assert!(store.series(name).is_some(), "missing {name}");
        }

        // The exposition passes our own strict validator and carries
        // the scheduler pipeline histograms with non-zero counts.
        let exposition = std::fs::read_to_string(&prom).unwrap();
        slackvm::telemetry::prometheus::validate(&exposition).unwrap();
        assert!(exposition.contains("# TYPE slackvm_sched_select histogram"));
        assert!(exposition.contains("slackvm_timeseries"));

        // Same seed, same interval: byte-identical CSV.
        let series2 = dir.join("series2.csv");
        run(&[
            "replay",
            "--trace",
            trace_str,
            "--sample-interval",
            "7200",
            "--series-out",
            series2.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(csv, std::fs::read_to_string(&series2).unwrap());

        // The dashboard renders a summary row per series, validates the
        // exposition, and writes a runnable gnuplot script.
        let script = dir.join("obs.gp");
        let dash = run(&[
            "obs",
            "--series",
            series.to_str().unwrap(),
            "--prom",
            prom.to_str().unwrap(),
            "--gnuplot-out",
            script.to_str().unwrap(),
        ])
        .unwrap();
        assert!(dash.contains("cluster.alive_vms"));
        assert!(dash.contains("p99"));
        assert!(dash.contains("valid Prometheus exposition"));
        let gp = std::fs::read_to_string(&script).unwrap();
        assert!(gp.contains("set multiplot"));
        assert!(gp.contains("cluster.cpu_utilization"));

        let err = run(&["obs"]).unwrap_err();
        assert!(matches!(err, CliError::MissingOption("series")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn steady_series_out_downsamples_the_run() {
        let dir = std::env::temp_dir().join("slackvm-cli-steady-series");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        run(&[
            "generate",
            "--provider",
            "azure",
            "--mix",
            "E",
            "--population",
            "60",
            "--days",
            "4",
            "--out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        let series = dir.join("steady.csv");
        let out = run(&[
            "steady",
            "--trace",
            trace.to_str().unwrap(),
            "--series-out",
            series.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("wrote"), "no series note:\n{out}");
        let store = TimeSeriesStore::from_csv(&std::fs::read_to_string(&series).unwrap()).unwrap();
        assert!(store.series("cluster.alive_vms").is_some());
        assert!(store.series("cluster.cpu_utilization").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_rejects_missing_trace() {
        let err = run(&["replay"]).unwrap_err();
        assert!(matches!(err, CliError::MissingOption("trace")));
        let err = run(&["replay", "--trace", "/nonexistent/x.json"]).unwrap_err();
        assert!(matches!(err, CliError::Io { .. }));
    }

    #[test]
    fn sweep_variants() {
        let out = run(&[
            "sweep",
            "seeds",
            "--provider",
            "ovhcloud",
            "--mix",
            "F",
            "--population",
            "60",
        ])
        .unwrap();
        assert!(out.contains("seed replication"));
        let err = run(&["sweep", "volume", "--provider", "azure"]).unwrap_err();
        assert!(err.to_string().contains("volume"));
    }

    #[test]
    fn recommend_computes_a_retune() {
        let out = run(&[
            "recommend",
            "--vcpus",
            "48",
            "--level",
            "3",
            "--demand",
            "2,3,4,3.5,2.5",
        ])
        .unwrap();
        assert!(out.contains("recommendation: 8:1"));
        assert!(out.contains("10 freed"));
        let err = run(&["recommend", "--vcpus", "48"]).unwrap_err();
        assert!(matches!(err, CliError::MissingOption("demand")));
    }

    #[test]
    fn scenarios_command_lists_and_filters() {
        let out = run(&["scenarios", "--population", "60"]).unwrap();
        for name in [
            "paper-week-f",
            "burst-day",
            "devtest-churn",
            "enterprise-steady",
        ] {
            assert!(out.contains(name), "missing {name}");
        }
        let one = run(&["scenarios", "--population", "60", "--run", "burst-day"]).unwrap();
        assert!(one.contains("burst-day"));
        assert!(!one.contains("paper-week-f"));
        let err = run(&["scenarios", "--run", "nope"]).unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn steady_command_reports_the_warmup() {
        let dir = std::env::temp_dir().join("slackvm-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        run(&[
            "generate",
            "--provider",
            "azure",
            "--mix",
            "E",
            "--population",
            "60",
            "--days",
            "4",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&["steady", "--trace", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("steady region"));
        assert!(out.contains("mean population"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn calibrate_command_parses_custom_targets() {
        // A tiny step keeps the grid cheap in debug tests? No — the full
        // grid at any step is 240 runs; use the paper defaults but only
        // assert parse errors here (the fit itself is covered by
        // slackvm-perf's unit tests and the bench harness).
        let err = run(&["calibrate", "--targets", "1.0;2.0"]).unwrap_err();
        assert!(err.to_string().contains("bad target pair"));
        let err = run(&["calibrate", "--targets", "1.0,x"]).unwrap_err();
        assert!(err.to_string().contains("bad target number"));
    }

    #[test]
    fn typo_protection_fires() {
        let err = run(&["fig3", "--provder", "azure"]).unwrap_err();
        assert!(matches!(err, CliError::UnknownOption(_)));
    }

    #[test]
    fn replay_flag_validation_fires_before_trace_io() {
        // Flag typos must die before the trace is even opened, so a
        // nonexistent path proves the ordering. Unknown policies get a
        // one-line error naming the options.
        let err = run(&[
            "replay",
            "--trace",
            "/nonexistent/x.json",
            "--model",
            "shared",
            "--policy",
            "magic",
        ])
        .unwrap_err()
        .to_string();
        assert!(err.contains("magic"), "{err}");
        assert!(err.contains("progress+bestfit"), "{err}");
        assert!(!err.contains('\n'), "error must be one line: {err}");

        // The dedicated baseline has no policy knob.
        let err = run(&[
            "replay",
            "--trace",
            "/nonexistent/x.json",
            "--model",
            "dedicated",
            "--policy",
            "best-fit",
        ])
        .unwrap_err()
        .to_string();
        assert!(err.contains("shared model only"), "{err}");

        // Same treatment for the index mode.
        let err = run(&[
            "replay",
            "--trace",
            "/nonexistent/x.json",
            "--index",
            "hashed",
        ])
        .unwrap_err()
        .to_string();
        assert!(err.contains("unknown index mode"), "{err}");
        assert!(!err.contains('\n'), "error must be one line: {err}");
    }

    fn idle_vm(
        id: u64,
        vcpus: u32,
        mem_gib: u64,
        at: u64,
        until: u64,
    ) -> (u64, slackvm::workload::WorkloadEvent) {
        (
            at,
            slackvm::workload::WorkloadEvent::Arrival(Box::new(slackvm::workload::VmInstance {
                id: VmId(id),
                spec: VmSpec::of(vcpus, gib(mem_gib), OversubLevel::of(1)),
                class: slackvm::workload::UsageClass::Idle,
                usage: slackvm::workload::CpuUsageModel::Idle { base: 0.02 },
                seed: id,
                arrival_secs: at,
                departure_secs: until,
            })),
        )
    }

    #[test]
    fn rebalance_plan_and_apply_consolidate_a_fragmented_replay() {
        use slackvm::workload::{Workload, WorkloadEvent};
        let dir = std::env::temp_dir().join(format!("slackvm-cli-rebal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        // Two near-full PMs; the first drains to one small VM that
        // first-fit parks back on it — classic departure fragmentation.
        let workload = Workload {
            events: vec![
                idle_vm(0, 20, 80, 0, 500),
                idle_vm(1, 20, 80, 0, 10_000),
                (500, WorkloadEvent::Departure { id: VmId(0) }),
                idle_vm(2, 4, 16, 600, 10_000),
            ],
        };
        workload.validate().unwrap();
        // The offline stub build has no serde; the real `cargo test`
        // exercises the full path.
        let Ok(json) = serde_json::to_string(&workload) else {
            return;
        };
        std::fs::write(&path, json).unwrap();
        let trace = path.to_str().unwrap();

        let out = run(&["rebalance", "plan", "--trace", trace, "--policy", "first-fit"]).unwrap();
        assert!(out.contains("2 PMs opened, 2 active"), "{out}");
        assert!(out.contains("1 migration(s), 1 PM(s) freed"), "{out}");
        assert!(out.contains("\"migrations\":1"), "{out}");
        assert!(out.contains("vm-2  pm-0 -> pm-1"), "{out}");

        // Before the departure there is nothing to consolidate.
        let out = run(&[
            "rebalance", "plan", "--trace", trace, "--policy", "first-fit", "--at", "2",
        ])
        .unwrap();
        assert!(out.contains("state at event 2/4"), "{out}");
        assert!(out.contains("0 migration(s)"), "{out}");

        let out = run(&["rebalance", "apply", "--trace", trace, "--policy", "first-fit"]).unwrap();
        assert!(
            out.contains("rebalance applied: 1 migration(s)"),
            "{out}"
        );
        assert!(out.contains("active PMs 2 -> 1 (1 freed)"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebalance_flag_validation_fires_before_trace_io() {
        // A nonexistent trace path proves validation precedes IO.
        let err = run(&[
            "rebalance", "plan", "--trace", "/nonexistent/x.json", "--max-migrations", "0",
        ])
        .unwrap_err()
        .to_string();
        assert!(err.contains("max migrations"), "{err}");
        assert!(!err.contains('\n'), "error must be one line: {err}");
        let err = run(&["rebalance", "drain", "--trace", "/nonexistent/x.json"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("plan, apply"), "{err}");
        let err = run(&[
            "rebalance", "plan", "--trace", "/nonexistent/x.json",
            "--model", "dedicated", "--policy", "best-fit",
        ])
        .unwrap_err()
        .to_string();
        assert!(err.contains("shared model only"), "{err}");
    }

    #[test]
    fn serve_rebalance_flags_are_validated() {
        let err = run(&["serve", "--rebalance-max-migrations", "4"])
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("--rebalance-max-migrations requires --rebalance-every-ms"),
            "{err}"
        );
        let err = run(&["serve", "--rebalance-every-ms", "0"])
            .unwrap_err()
            .to_string();
        assert!(err.contains(">= 1"), "{err}");
        let err = run(&[
            "serve", "--rebalance-every-ms", "50", "--rebalance-max-concurrent", "0",
        ])
        .unwrap_err()
        .to_string();
        assert!(err.contains("rebalance budget"), "{err}");
        // A remote bombard cannot reconfigure the server's rebalancer.
        let err = run(&["bombard", "--addr", "127.0.0.1:1", "--rebalance-every-ms", "50"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("slackvm serve"), "{err}");
    }

    #[test]
    fn bombard_in_process_with_rebalance_runs_clean() {
        // The online tick interleaves with live admission; the final
        // report's invariant check proves no VM was lost or duplicated.
        let out = run(&[
            "bombard",
            "--requests",
            "150",
            "--population",
            "24",
            "--clients",
            "2",
            "--rebalance-every-ms",
            "5",
        ])
        .unwrap();
        assert!(out.contains("final: admitted 150"), "{out}");
    }

    #[test]
    fn pressure_status_plan_and_apply_over_a_skewed_replay() {
        use slackvm::workload::Workload;
        let dir = std::env::temp_dir().join(format!("slackvm-cli-press-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        // Pick VM ids the synthesized signal marks hot vs cold, so the
        // fixture is stable whatever the splitmix draw does.
        let hot: Vec<u64> = (0..64)
            .filter(|&i| slackvm_pressure::is_hot(42, VmId(i), 0.5))
            .collect();
        let cold: Vec<u64> = (0..64)
            .filter(|&i| !slackvm_pressure::is_hot(42, VmId(i), 0.5))
            .collect();
        assert!(hot.len() >= 2 && !cold.is_empty());
        // Two hot 16-core VMs fill pm0 (32 cores); the cold VM opens
        // pm1 — a hotspot next to a cold destination.
        let workload = Workload {
            events: vec![
                idle_vm(hot[0], 16, 32, 0, 10_000),
                idle_vm(hot[1], 16, 32, 0, 10_000),
                idle_vm(cold[0], 4, 8, 0, 10_000),
            ],
        };
        workload.validate().unwrap();
        // The offline stub build has no serde; the real `cargo test`
        // exercises the full path.
        let Ok(json) = serde_json::to_string(&workload) else {
            return;
        };
        std::fs::write(&path, json).unwrap();
        let trace = path.to_str().unwrap();
        let base = ["--trace", trace, "--policy", "first-fit", "--hot-frac", "0.5"];

        let mut argv = vec!["pressure", "status"];
        argv.extend(base);
        let out = run(&argv).unwrap();
        assert!(out.contains("2 PM(s) — 1 hot, 0 warm, 1 cold"), "{out}");
        assert!(out.contains("\"hot\":1"), "{out}");

        let mut argv = vec!["pressure", "plan"];
        argv.extend(base);
        let out = run(&argv).unwrap();
        assert!(
            out.contains("1 migration(s), hot PMs 1 -> 0 (1 cooled)"),
            "{out}"
        );
        assert!(out.contains("\"hot_before\":1"), "{out}");
        assert!(out.contains("pm-0 -> pm-1"), "{out}");

        let mut argv = vec!["pressure", "apply"];
        argv.extend(base);
        let out = run(&argv).unwrap();
        assert!(out.contains("after: 0 hot"), "{out}");

        // Without --hot-frac every VM idles: nothing is hot, nothing moves.
        let out = run(&[
            "pressure", "plan", "--trace", trace, "--policy", "first-fit",
        ])
        .unwrap();
        assert!(out.contains("0 migration(s), hot PMs 0 -> 0"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pressure_flag_validation_fires_before_trace_io() {
        let err = run(&[
            "pressure", "plan", "--trace", "/nonexistent/x.json", "--max-migrations", "0",
        ])
        .unwrap_err()
        .to_string();
        assert!(err.contains("max migrations"), "{err}");
        let err = run(&["pressure", "melt", "--trace", "/nonexistent/x.json"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("status, plan, apply"), "{err}");
        let err = run(&[
            "pressure", "plan", "--trace", "/nonexistent/x.json", "--hot-frac", "1.5",
        ])
        .unwrap_err()
        .to_string();
        assert!(err.contains("[0, 1]"), "{err}");
    }

    #[test]
    fn serve_pressure_flags_are_validated() {
        let err = run(&["serve", "--pressure-max-migrations", "4"])
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("--pressure-max-migrations requires --pressure-every-ms"),
            "{err}"
        );
        let err = run(&["serve", "--pressure-every-ms", "0"])
            .unwrap_err()
            .to_string();
        assert!(err.contains(">= 1"), "{err}");
        let err = run(&[
            "serve", "--pressure-every-ms", "50", "--pressure-max-concurrent", "0",
        ])
        .unwrap_err()
        .to_string();
        assert!(err.contains("rebalance budget"), "{err}");
        // A remote bombard cannot reconfigure the server's pressure plane,
        // and the client-side hot fraction is bounds-checked up front.
        let err = run(&["bombard", "--addr", "127.0.0.1:1", "--pressure-every-ms", "50"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("slackvm serve"), "{err}");
        let err = run(&["bombard", "--hot-frac", "2"]).unwrap_err().to_string();
        assert!(err.contains("[0, 1]"), "{err}");
    }

    #[test]
    fn bombard_in_process_with_both_background_planes_runs_clean() {
        // Pressure and consolidation ticks interleave with live
        // admission under a skewed, pinned-hot-VM load; the final
        // report's invariant check proves no VM was lost or duplicated.
        let dir = std::env::temp_dir().join(format!("slackvm-cli-planes-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let series = dir.join("planes.csv");
        let out = run(&[
            "bombard",
            "--requests",
            "150",
            "--population",
            "24",
            "--clients",
            "2",
            "--rebalance-every-ms",
            "7",
            "--pressure-every-ms",
            "5",
            "--pressure-hot-frac",
            "0.3",
            "--hot-frac",
            "0.3",
            "--series-out",
            series.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("final: admitted 150"), "{out}");
        // The sampler records both planes, and the obs dashboard
        // surfaces them from the same CSV.
        let csv = std::fs::read_to_string(&series).unwrap();
        for name in [
            "rebalance.migrations",
            "rebalance.pms_freed",
            "pressure.migrations",
            "pressure.hot_pms",
        ] {
            assert!(csv.contains(name), "series CSV misses {name}");
        }
        let out = run(&["obs", "--series", series.to_str().unwrap()]).unwrap();
        assert!(out.contains("pressure.hot_pms"), "{out}");
        assert!(out.contains("rebalance.migrations"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_bombard_reject_bad_names_before_binding() {
        let err = run(&["serve", "--policy", "magic"])
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("magic") && err.contains("progress+bestfit"),
            "{err}"
        );
        assert!(!err.contains('\n'), "error must be one line: {err}");
        let err = run(&["serve", "--index", "hashed"])
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("unknown index mode") && err.contains("incremental"),
            "{err}"
        );
        let err = run(&["bombard", "--scenario", "rush-hour"])
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("rush-hour") && err.contains("paper-week-f"),
            "{err}"
        );
        let err = run(&["bombard", "--shutdown"]).unwrap_err().to_string();
        assert!(err.contains("--addr"), "{err}");
    }

    #[test]
    fn bombard_in_process_smoke_with_artifacts() {
        let dir = std::env::temp_dir().join("slackvm-cli-bombard");
        std::fs::create_dir_all(&dir).unwrap();
        let prom = dir.join("serve.prom");
        let series = dir.join("serve.csv");
        let out = run(&[
            "bombard",
            "--requests",
            "200",
            "--population",
            "32",
            "--clients",
            "2",
            "--shards",
            "2",
            "--prom-out",
            prom.to_str().unwrap(),
            "--series-out",
            series.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("closed-loop"), "{out}");
        assert!(out.contains("placed 200"), "{out}");
        assert!(out.contains("shed 0"), "{out}");
        assert!(out.contains("final: admitted 200"), "{out}");

        // The exposition passes the strict validator and feeds `obs
        // --prom` without a series file.
        let exposition = std::fs::read_to_string(&prom).unwrap();
        slackvm::telemetry::prometheus::validate(&exposition).unwrap();
        assert!(
            exposition.contains("slackvm_serve_admitted"),
            "{exposition}"
        );
        assert!(exposition.contains("slackvm_build_info{"), "{exposition}");
        let dash = run(&["obs", "--prom", prom.to_str().unwrap()]).unwrap();
        assert!(dash.contains("valid Prometheus exposition"), "{dash}");

        // The sampler wrote a readable CSV.
        let store = TimeSeriesStore::from_csv(&std::fs::read_to_string(&series).unwrap()).unwrap();
        assert!(store.series("serve.inflight").is_some());

        // Open loop at a modest rate also completes.
        let out = run(&[
            "bombard",
            "--requests",
            "50",
            "--population",
            "16",
            "--rate",
            "5000",
        ])
        .unwrap();
        assert!(out.contains("open-loop"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bombard_drives_a_tcp_server_and_shuts_it_down() {
        let dir = std::env::temp_dir().join("slackvm-cli-tcp");
        std::fs::create_dir_all(&dir).unwrap();
        let prom = dir.join("scrape.prom");
        let service = slackvm_serve::PlacementService::start(slackvm_serve::ServeConfig {
            shards: 2,
            ..Default::default()
        })
        .unwrap();
        let server = slackvm_serve::TcpServer::bind("127.0.0.1:0", service).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let out = run(&[
            "bombard",
            "--addr",
            &addr,
            "--requests",
            "80",
            "--population",
            "16",
            "--clients",
            "2",
            "--prom-out",
            prom.to_str().unwrap(),
            "--shutdown",
        ])
        .unwrap();
        assert!(out.contains("closed-loop/tcp"), "{out}");
        assert!(out.contains("placed 80"), "{out}");
        assert!(out.contains("sent shutdown"), "{out}");

        let (stats, report) = handle.join().unwrap();
        assert_eq!(report.admitted(), 80);
        assert!(stats.requests >= 160, "{stats:?}");
        report.check_invariants().unwrap();

        let exposition = std::fs::read_to_string(&prom).unwrap();
        slackvm::telemetry::prometheus::validate(&exposition).unwrap();
        assert!(exposition.contains("slackvm_build_info{"), "{exposition}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn custom_catalog_and_topology_flow() {
        let dir = std::env::temp_dir().join("slackvm-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        // Write a custom catalog and generate from it.
        let cat_path = dir.join("catalog.json");
        let catalog_json = serde_json::to_string(&catalog::balanced()).unwrap();
        std::fs::write(&cat_path, catalog_json).unwrap();
        let provider_arg = format!("file:{}", cat_path.to_str().unwrap());
        let trace_path = dir.join("trace.json");
        run(&[
            "generate",
            "--provider",
            &provider_arg,
            "--mix",
            "A",
            "--population",
            "20",
            "--days",
            "1",
            "--out",
            trace_path.to_str().unwrap(),
        ])
        .unwrap();
        // Replay on a custom 16-core / 64 GiB worker shape.
        let out = run(&[
            "replay",
            "--trace",
            trace_path.to_str().unwrap(),
            "--topology",
            "cores=16",
            "--mem",
            "64",
        ])
        .unwrap();
        assert!(out.contains("PMs opened"));
        // Malformed catalog file errors cleanly.
        let bad_path = dir.join("bad.json");
        std::fs::write(&bad_path, "{").unwrap();
        let err = run(&[
            "generate",
            "--provider",
            &format!("file:{}", bad_path.to_str().unwrap()),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("JSON"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_traces_fail_with_one_line_errors_naming_the_file() {
        let dir = std::env::temp_dir().join(format!("slackvm-cli-badtrace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A trace chopped mid-write and one that is not JSON at all.
        let truncated = dir.join("truncated.json");
        std::fs::write(&truncated, r#"{"arrivals": [{"at": 0, "vm""#).unwrap();
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, [0u8, 159, 146, 150, 255, 0, 17]).unwrap();
        for path in [&truncated, &garbage] {
            let path = path.to_str().unwrap();
            let msg = run(&["replay", "--trace", path, "--model", "shared"])
                .unwrap_err()
                .to_string();
            assert!(msg.contains(path), "error must name the file: {msg}");
            assert!(!msg.contains('\n'), "error must be one line: {msg}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_flags_without_a_state_dir_are_rejected() {
        let err = run(&["serve", "--fsync", "off"]).unwrap_err().to_string();
        assert!(err.contains("--fsync requires --state-dir"), "{err}");
        let err = run(&["serve", "--retain", "5"]).unwrap_err().to_string();
        assert!(err.contains("--retain requires --state-dir"), "{err}");
        // Bad fsync policy names fail before any socket is bound.
        let err = run(&["serve", "--state-dir", "/tmp/x", "--fsync", "always"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("every, interval, off"), "{err}");
        // Bombard never journals — the flags are unknown there.
        let err = run(&["bombard", "--state-dir", "/tmp/x"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("state-dir"), "{err}");
    }

    #[test]
    fn trace_and_slo_flags_are_validated_before_binding() {
        let err = run(&["serve", "--trace", "verbose"]).unwrap_err().to_string();
        assert!(err.contains("unknown trace level"), "{err}");
        let err = run(&["serve", "--trace-out", "/tmp/t.json"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("--trace-out requires --trace-sample"), "{err}");
        let err = run(&["serve", "--trace", "off", "--trace-sample", "4"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("conflicts"), "{err}");
        let err = run(&["bombard", "--requests", "1", "--trace-sample", "0"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("sampling period"), "{err}");
        let err = run(&["bombard", "--requests", "1", "--stall-ms", "0"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("stall threshold"), "{err}");
        let err = run(&["bombard", "--requests", "1", "--slo-availability", "1.5"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("slo targets"), "{err}");
        // A remote bombard cannot reconfigure the server's tracing.
        let err = run(&["bombard", "--addr", "127.0.0.1:1", "--trace-sample", "4"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("slackvm serve"), "{err}");
    }

    #[test]
    fn bombard_samples_a_chrome_trace_and_prints_the_stage_breakdown() {
        let dir = std::env::temp_dir().join(format!("slackvm-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("spans.json");
        let out = run(&[
            "bombard",
            "--requests",
            "150",
            "--population",
            "24",
            "--clients",
            "2",
            "--trace-sample",
            "3",
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("server     queue"), "{out}");
        assert!(out.contains("slowest sampled requests:"), "{out}");
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        for span in ["serve.request", "serve.queue_wait", "serve.placement"] {
            assert!(json.contains(&format!("\"name\":\"{span}\"")), "{span} missing");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_and_fsck_audit_a_state_directory_written_by_the_service() {
        use slackvm_serve::{DurableOptions, ModelSpec, Op, ServeConfig};
        let dir = std::env::temp_dir().join(format!("slackvm-cli-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            shards: 2,
            queue_depth: 64,
            batch_max: 16,
            deadline: None,
            deterministic: false,
            model: ModelSpec::default_shared(),
            index: IndexMode::Incremental,
            sample_interval_ms: None,
            durable: Some(DurableOptions::new(&dir)),
            ..ServeConfig::default()
        };
        let svc = slackvm_serve::PlacementService::start(config).unwrap();
        for i in 0..10u64 {
            svc.call(Op::Place {
                id: VmId(i),
                spec: VmSpec::of(2, gib(4), OversubLevel::of(2)),
            })
            .unwrap();
        }
        svc.call(Op::Remove { id: VmId(4) }).unwrap();
        svc.stop();

        let dir_str = dir.to_str().unwrap().to_string();
        let out = run(&["recover", "--dir", &dir_str]).unwrap();
        assert!(out.contains("2 shard(s)"), "{out}");
        assert!(
            out.contains("shard 0:") && out.contains("shard 1:"),
            "{out}"
        );
        assert!(out.contains("torn 0 B"), "{out}");
        let out = run(&["fsck", "--dir", &dir_str]).unwrap();
        assert!(out.contains("fsck: clean"), "{out}");
        assert!(out.contains("OK"), "{out}");

        // A directory with no manifest is an error, not a panic.
        let empty = dir.join("not-a-state-dir");
        std::fs::create_dir_all(&empty).unwrap();
        let err = run(&["recover", "--dir", empty.to_str().unwrap()])
            .unwrap_err()
            .to_string();
        assert!(err.contains("MANIFEST"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
