//! # slackvm-cli
//!
//! The `slackvm` command-line tool: regenerate every paper artifact,
//! generate and replay workload traces, analyze compactions, and sweep
//! sensitivities — all from a shell.
//!
//! Commands (see [`run`] or `slackvm help`):
//!
//! | command | what it does |
//! |---|---|
//! | `tables` | Tables I–III vs the paper |
//! | `fig2` | Table IV + Fig. 2 response times |
//! | `fig3` | unallocated resources across distributions A..O |
//! | `fig4` | PM-savings grid |
//! | `generate` | write a workload trace as JSON |
//! | `replay` | replay a JSON trace against a deployment model |
//! | `obs` | dashboard for a sampled run (series CSV, Prometheus) |
//! | `compact` | compaction analysis of a mid-replay cluster state |
//! | `rebalance` | plan/apply a consolidation pass over a replayed state |
//! | `pressure` | hotspot report / spread-out mitigation over a replayed state |
//! | `sweep` | sensitivity sweeps (`mc`, `population`, `seeds`) |
//! | `recommend` | dynamic oversubscription-level recommendation |
//! | `serve` | online placement service over TCP (line JSON) |
//! | `bombard` | load generator for a placement service |
//! | `recover` | offline recovery report for a serve state directory |
//! | `fsck` | verify a state directory against its committed history |
//!
//! Command implementations return their report as a `String`, keeping
//! them unit-testable; `main` only prints.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod error;

pub use args::Args;
pub use error::CliError;

/// Dispatches one parsed invocation to its command.
pub fn run(args: &Args) -> Result<String, CliError> {
    match args.command.as_str() {
        "" | "help" | "--help" | "-h" => Ok(commands::help()),
        "tables" => commands::tables(args),
        "fig2" => commands::fig2(args),
        "fig3" => commands::fig3(args),
        "fig4" => commands::fig4(args),
        "generate" => commands::generate(args),
        "replay" => commands::replay(args),
        "obs" => commands::obs(args),
        "compact" => commands::compact(args),
        "rebalance" => commands::rebalance(args),
        "pressure" => commands::pressure(args),
        "sweep" => commands::sweep(args),
        "layout" => commands::layout(args),
        "scenarios" => commands::scenarios(args),
        "steady" => commands::steady(args),
        "report" => commands::report(args),
        "calibrate" => commands::calibrate_cmd(args),
        "recommend" => commands::recommend(args),
        "serve" => commands::serve(args),
        "bombard" => commands::bombard(args),
        "recover" => commands::recover(args),
        "fsck" => commands::fsck(args),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_lists_every_command() {
        let help = run(&Args::parse(["help"]).unwrap()).unwrap();
        for cmd in [
            "tables",
            "fig2",
            "fig3",
            "fig4",
            "generate",
            "replay",
            "obs",
            "compact",
            "rebalance",
            "pressure",
            "sweep",
            "recommend",
            "scenarios",
            "steady",
            "layout",
            "report",
            "calibrate",
            "serve",
            "bombard",
            "recover",
            "fsck",
        ] {
            assert!(help.contains(cmd), "help misses {cmd}");
        }
    }

    #[test]
    fn unknown_command_errors() {
        let err = run(&Args::parse(["fig9"]).unwrap()).unwrap_err();
        assert!(matches!(err, CliError::UnknownCommand(_)));
    }

    #[test]
    fn empty_invocation_prints_help() {
        let out = run(&Args::parse(Vec::<String>::new()).unwrap()).unwrap();
        assert!(out.contains("usage"));
    }
}
