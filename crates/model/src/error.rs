//! Error type shared across the model layer.

use thiserror::Error;

/// Errors produced when constructing or combining model-layer values.
#[derive(Debug, Error, Clone, PartialEq)]
pub enum ModelError {
    /// An oversubscription level outside the supported `1..=64` range.
    #[error("oversubscription level {0} is outside the supported range 1..=64")]
    InvalidOversubLevel(u32),

    /// A VM specification with zero vCPUs or zero memory.
    #[error("VM specification must have at least 1 vCPU and 1 MiB of memory (got {vcpus} vCPU, {mem_mib} MiB)")]
    EmptyVmSpec {
        /// Requested vCPU count.
        vcpus: u32,
        /// Requested memory in MiB.
        mem_mib: u64,
    },

    /// A PM configuration with zero cores or zero memory.
    #[error("PM configuration must have at least 1 core and 1 MiB of memory (got {cores} cores, {mem_mib} MiB)")]
    EmptyPmConfig {
        /// Configured core count.
        cores: u32,
        /// Configured memory in MiB.
        mem_mib: u64,
    },

    /// Resource arithmetic underflowed (e.g. releasing more than allocated).
    #[error("resource accounting underflow: tried to release {requested} {what} but only {available} allocated")]
    Underflow {
        /// Which dimension underflowed ("millicores" or "MiB").
        what: &'static str,
        /// Amount requested to release.
        requested: u64,
        /// Amount actually allocated.
        available: u64,
    },

    /// A memory oversubscription ratio that is not at least 1.0.
    #[error("memory oversubscription ratio must be >= 1.0 (got {0})")]
    InvalidMemRatio(f64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::InvalidOversubLevel(0);
        assert!(e.to_string().contains("oversubscription level 0"));

        let e = ModelError::EmptyVmSpec {
            vcpus: 0,
            mem_mib: 4,
        };
        assert!(e.to_string().contains("0 vCPU"));

        let e = ModelError::Underflow {
            what: "millicores",
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("release 10 millicores"));
    }
}
