//! Oversubscription levels and policies.
//!
//! An *oversubscription level* `n:1` means the provider may expose up to
//! `n` vCPUs per physical core. The paper's experiments use levels 1:1,
//! 2:1 and 3:1, but the local scheduler supports any level (§VII-A: "Our
//! local scheduler does not impose a limit on the considered
//! oversubscription levels").

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::resources::Millicores;

/// A CPU oversubscription level, expressed as the `n` of an `n:1` ratio.
///
/// `OversubLevel(1)` is the premium, non-oversubscribed tier. Ordering
/// follows `n`: a *lower* level is *stricter* (fewer vCPUs may contend for
/// a core), which drives the vNode pooling rule of paper §V-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct OversubLevel(u32);

impl OversubLevel {
    /// The premium 1:1 level (dedicated resources).
    pub const PREMIUM: OversubLevel = OversubLevel(1);

    /// Constructs a level, validating the supported range `1..=64`.
    pub fn new(n: u32) -> Result<Self, ModelError> {
        if (1..=64).contains(&n) {
            Ok(OversubLevel(n))
        } else {
            Err(ModelError::InvalidOversubLevel(n))
        }
    }

    /// Constructs a level, panicking outside `1..=64`. Convenient for
    /// constants in tests and experiment definitions.
    pub fn of(n: u32) -> Self {
        Self::new(n).expect("oversubscription level in 1..=64")
    }

    /// The `n` of the `n:1` ratio.
    #[inline]
    pub const fn ratio(self) -> u32 {
        self.0
    }

    /// Whether this is the non-oversubscribed premium tier.
    #[inline]
    pub const fn is_premium(self) -> bool {
        self.0 == 1
    }

    /// Whether hosting VMs of level `other` inside a resource pool sized
    /// for `self` keeps every guarantee intact.
    ///
    /// Paper §V-B: a 2:1 VM may coexist with 3:1 VMs *iff* the shared pool
    /// still complies with the 2:1 ratio — the stricter (lower) level's
    /// constraint subsumes the looser one.
    #[inline]
    pub const fn satisfies(self, other: OversubLevel) -> bool {
        self.0 <= other.0
    }

    /// Physical-core consumption of `vcpus` virtual CPUs at this level.
    #[inline]
    pub const fn physical_cost(self, vcpus: u32) -> Millicores {
        Millicores::for_vcpus_at_level(vcpus, self.0)
    }

    /// Maximum vCPUs a pool of `cores` whole physical cores may expose.
    #[inline]
    pub const fn vcpu_capacity(self, cores: u32) -> u32 {
        self.0 * cores
    }

    /// Whole physical cores needed to host `vcpus` vCPUs at this level
    /// (the size of a vNode pinned to whole cores).
    #[inline]
    pub const fn cores_needed(self, vcpus: u32) -> u32 {
        (vcpus as u64).div_ceil(self.0 as u64) as u32
    }
}

impl std::fmt::Display for OversubLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:1", self.0)
    }
}

/// A cluster- or vNode-wide oversubscription policy.
///
/// The paper's core experiments oversubscribe only CPU; §VIII notes that
/// memory could be oversubscribed to a limited extent (e.g. OpenStack
/// defaults to 16:1 CPU and 1.5:1 memory). `mem_ratio` captures that
/// optional knob; `1.0` (the default) disables memory oversubscription.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OversubPolicy {
    /// CPU oversubscription level (`n:1`).
    pub cpu: OversubLevel,
    /// Memory oversubscription ratio (`>= 1.0`; `1.0` = none).
    pub mem_ratio: f64,
}

impl OversubPolicy {
    /// A CPU-only policy at level `n:1` with no memory oversubscription.
    pub fn cpu_only(level: OversubLevel) -> Self {
        OversubPolicy {
            cpu: level,
            mem_ratio: 1.0,
        }
    }

    /// A policy oversubscribing both CPU and memory.
    pub fn new(level: OversubLevel, mem_ratio: f64) -> Result<Self, ModelError> {
        if mem_ratio.is_finite() && mem_ratio >= 1.0 {
            Ok(OversubPolicy {
                cpu: level,
                mem_ratio,
            })
        } else {
            Err(ModelError::InvalidMemRatio(mem_ratio))
        }
    }

    /// Effective memory capacity (MiB) exposed by `physical_mib` of DRAM.
    pub fn effective_mem_mib(&self, physical_mib: u64) -> u64 {
        (physical_mib as f64 * self.mem_ratio).floor() as u64
    }
}

impl Default for OversubPolicy {
    fn default() -> Self {
        OversubPolicy::cpu_only(OversubLevel::PREMIUM)
    }
}

impl std::fmt::Display for OversubPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if (self.mem_ratio - 1.0).abs() < f64::EPSILON {
            write!(f, "cpu {}", self.cpu)
        } else {
            write!(f, "cpu {} / mem {:.2}:1", self.cpu, self.mem_ratio)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn level_range_is_enforced() {
        assert!(OversubLevel::new(0).is_err());
        assert!(OversubLevel::new(65).is_err());
        assert_eq!(OversubLevel::new(1).unwrap(), OversubLevel::PREMIUM);
        assert_eq!(OversubLevel::new(64).unwrap().ratio(), 64);
    }

    #[test]
    fn premium_is_strictest() {
        let one = OversubLevel::of(1);
        let two = OversubLevel::of(2);
        let three = OversubLevel::of(3);
        assert!(one.satisfies(one));
        assert!(one.satisfies(three));
        assert!(two.satisfies(three));
        assert!(!three.satisfies(two));
        assert!(one.is_premium());
        assert!(!two.is_premium());
    }

    #[test]
    fn cores_needed_matches_paper_examples() {
        // 74 VMs of ~2.25 vCPUs at 3:1 need about a third of the vCPUs in cores.
        let l3 = OversubLevel::of(3);
        assert_eq!(l3.cores_needed(0), 0);
        assert_eq!(l3.cores_needed(1), 1);
        assert_eq!(l3.cores_needed(3), 1);
        assert_eq!(l3.cores_needed(4), 2);
        assert_eq!(l3.vcpu_capacity(2), 6);
    }

    #[test]
    fn mem_policy_validation() {
        assert!(OversubPolicy::new(OversubLevel::of(2), 0.5).is_err());
        assert!(OversubPolicy::new(OversubLevel::of(2), f64::NAN).is_err());
        let p = OversubPolicy::new(OversubLevel::of(16), 1.5).unwrap();
        assert_eq!(p.effective_mem_mib(1000), 1500);
        assert_eq!(OversubPolicy::default().effective_mem_mib(1000), 1000);
    }

    #[test]
    fn display_is_ratio_style() {
        assert_eq!(OversubLevel::of(3).to_string(), "3:1");
        assert_eq!(
            OversubPolicy::cpu_only(OversubLevel::of(2)).to_string(),
            "cpu 2:1"
        );
        assert_eq!(
            OversubPolicy::new(OversubLevel::of(16), 1.5)
                .unwrap()
                .to_string(),
            "cpu 16:1 / mem 1.50:1"
        );
    }

    proptest! {
        #[test]
        fn satisfies_is_a_total_preorder(a in 1u32..=64, b in 1u32..=64, c in 1u32..=64) {
            let (la, lb, lc) = (OversubLevel::of(a), OversubLevel::of(b), OversubLevel::of(c));
            // reflexive
            prop_assert!(la.satisfies(la));
            // transitive
            if la.satisfies(lb) && lb.satisfies(lc) {
                prop_assert!(la.satisfies(lc));
            }
            // total
            prop_assert!(la.satisfies(lb) || lb.satisfies(la));
        }

        #[test]
        fn cores_needed_inverts_capacity(n in 1u32..=64, cores in 0u32..256) {
            let level = OversubLevel::of(n);
            let vcpus = level.vcpu_capacity(cores);
            prop_assert_eq!(level.cores_needed(vcpus), cores);
            if cores > 0 {
                prop_assert_eq!(level.cores_needed(vcpus + 1), cores + 1);
            }
        }
    }
}
