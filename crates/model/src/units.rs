//! Memory-unit helpers.
//!
//! All memory quantities in the workspace are carried as **MiB** in `u64`.
//! The paper quotes capacities in GB; at the granularity the experiments
//! care about (whole-GiB VM flavors, 128 GiB hosts) the GiB/GB distinction
//! is immaterial, so we use binary units throughout and treat the paper's
//! "GB" as GiB.

/// Number of MiB in one GiB.
pub const MIB_PER_GIB: u64 = 1024;

/// Converts a GiB amount into MiB.
///
/// ```
/// assert_eq!(slackvm_model::gib(4), 4096);
/// ```
#[inline]
pub const fn gib(amount: u64) -> u64 {
    amount * MIB_PER_GIB
}

/// Identity helper for MiB amounts, for call-site symmetry with [`gib`].
///
/// ```
/// assert_eq!(slackvm_model::mib(512), 512);
/// ```
#[inline]
pub const fn mib(amount: u64) -> u64 {
    amount
}

/// Converts MiB to (possibly fractional) GiB for reporting.
#[inline]
pub fn mib_to_gib_f64(amount_mib: u64) -> f64 {
    amount_mib as f64 / MIB_PER_GIB as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gib_scales_by_1024() {
        assert_eq!(gib(0), 0);
        assert_eq!(gib(1), 1024);
        assert_eq!(gib(128), 131_072);
    }

    #[test]
    fn mib_is_identity() {
        assert_eq!(mib(0), 0);
        assert_eq!(mib(123), 123);
    }

    #[test]
    fn mib_to_gib_roundtrips_whole_gib() {
        assert_eq!(mib_to_gib_f64(gib(7)), 7.0);
        assert_eq!(mib_to_gib_f64(512), 0.5);
    }
}
