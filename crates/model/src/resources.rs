//! Resource vectors and exact fractional-core accounting.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// Number of millicores per physical core (fixed-point CPU unit).
pub const MC_PER_CORE: u64 = 1000;

/// An exact, integer-valued CPU quantity in thousandths of a physical core.
///
/// Oversubscription makes per-VM physical-CPU consumption fractional: a
/// 1-vCPU VM on a 3:1 vNode consumes one third of a core. Carrying those
/// quantities as `f64` would make allocation accounting drift; millicores
/// keep it exact for every level in `1..=64` that divides 1000 — and for
/// those that do not (e.g. 3), [`Millicores::for_vcpus_at_level`] rounds
/// *up*, which errs on the safe (conservative) side of capacity checks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Millicores(pub u64);

impl Millicores {
    /// Zero millicores.
    pub const ZERO: Millicores = Millicores(0);

    /// Millicores corresponding to `cores` whole physical cores.
    #[inline]
    pub const fn from_cores(cores: u32) -> Self {
        Millicores(cores as u64 * MC_PER_CORE)
    }

    /// Physical-core consumption of `vcpus` virtual CPUs at oversubscription
    /// level `n:1`, rounded up to the nearest millicore.
    ///
    /// ```
    /// use slackvm_model::resources::Millicores;
    /// assert_eq!(Millicores::for_vcpus_at_level(2, 1).0, 2000);
    /// assert_eq!(Millicores::for_vcpus_at_level(1, 3).0, 334); // ceil(1000/3)
    /// assert_eq!(Millicores::for_vcpus_at_level(3, 3).0, 1000);
    /// ```
    #[inline]
    pub const fn for_vcpus_at_level(vcpus: u32, level: u32) -> Self {
        let raw = vcpus as u64 * MC_PER_CORE;
        Millicores(raw.div_ceil(level as u64))
    }

    /// The quantity as a floating-point number of cores (for reporting).
    #[inline]
    pub fn as_cores_f64(self) -> f64 {
        self.0 as f64 / MC_PER_CORE as f64
    }

    /// Whole cores needed to cover this quantity (rounded up).
    #[inline]
    pub const fn ceil_cores(self) -> u32 {
        (self.0.div_ceil(MC_PER_CORE)) as u32
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, other: Millicores) -> Millicores {
        Millicores(self.0.saturating_add(other.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, other: Millicores) -> Option<Millicores> {
        self.0.checked_add(other.0).map(Millicores)
    }

    /// Checked subtraction, as a [`ModelError::Underflow`] on failure.
    #[inline]
    pub fn checked_sub(self, other: Millicores) -> Result<Millicores, ModelError> {
        self.0
            .checked_sub(other.0)
            .map(Millicores)
            .ok_or(ModelError::Underflow {
                what: "millicores",
                requested: other.0,
                available: self.0,
            })
    }

    /// True when the quantity is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::Add for Millicores {
    type Output = Millicores;
    #[inline]
    fn add(self, rhs: Millicores) -> Millicores {
        Millicores(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Millicores {
    #[inline]
    fn add_assign(&mut self, rhs: Millicores) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Millicores {
    type Output = Millicores;
    #[inline]
    fn sub(self, rhs: Millicores) -> Millicores {
        Millicores(self.0 - rhs.0)
    }
}

impl std::ops::SubAssign for Millicores {
    #[inline]
    fn sub_assign(&mut self, rhs: Millicores) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for Millicores {
    fn sum<I: Iterator<Item = Millicores>>(iter: I) -> Millicores {
        iter.fold(Millicores::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Millicores {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}c", self.as_cores_f64())
    }
}

/// A two-dimensional resource request or capacity: virtual CPUs and memory.
///
/// This is the unit of *request* (what a tenant asks for); physical
/// consumption after oversubscription is derived via
/// [`Millicores::for_vcpus_at_level`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Resources {
    /// Virtual CPU count.
    pub vcpus: u32,
    /// Memory in MiB.
    pub mem_mib: u64,
}

impl Resources {
    /// Zero resources.
    pub const ZERO: Resources = Resources {
        vcpus: 0,
        mem_mib: 0,
    };

    /// Constructs a resource vector.
    #[inline]
    pub const fn new(vcpus: u32, mem_mib: u64) -> Self {
        Resources { vcpus, mem_mib }
    }

    /// Component-wise addition.
    #[inline]
    pub const fn plus(self, other: Resources) -> Resources {
        Resources {
            vcpus: self.vcpus + other.vcpus,
            mem_mib: self.mem_mib + other.mem_mib,
        }
    }

    /// Component-wise checked subtraction.
    pub fn minus(self, other: Resources) -> Result<Resources, ModelError> {
        let vcpus = self
            .vcpus
            .checked_sub(other.vcpus)
            .ok_or(ModelError::Underflow {
                what: "millicores",
                requested: other.vcpus as u64,
                available: self.vcpus as u64,
            })?;
        let mem_mib = self
            .mem_mib
            .checked_sub(other.mem_mib)
            .ok_or(ModelError::Underflow {
                what: "MiB",
                requested: other.mem_mib,
                available: self.mem_mib,
            })?;
        Ok(Resources { vcpus, mem_mib })
    }

    /// True when both dimensions fit inside `capacity`.
    #[inline]
    pub const fn fits_within(self, capacity: Resources) -> bool {
        self.vcpus <= capacity.vcpus && self.mem_mib <= capacity.mem_mib
    }

    /// True when both dimensions are zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.vcpus == 0 && self.mem_mib == 0
    }
}

impl std::ops::Add for Resources {
    type Output = Resources;
    #[inline]
    fn add(self, rhs: Resources) -> Resources {
        self.plus(rhs)
    }
}

impl std::iter::Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, Resources::plus)
    }
}

impl std::fmt::Display for Resources {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}vCPU/{:.1}GiB",
            self.vcpus,
            crate::units::mib_to_gib_f64(self.mem_mib)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn millicores_level_one_is_exact() {
        for v in 0..32 {
            assert_eq!(
                Millicores::for_vcpus_at_level(v, 1),
                Millicores::from_cores(v)
            );
        }
    }

    #[test]
    fn millicores_rounds_up_for_level_three() {
        assert_eq!(Millicores::for_vcpus_at_level(1, 3).0, 334);
        assert_eq!(Millicores::for_vcpus_at_level(2, 3).0, 667);
        assert_eq!(Millicores::for_vcpus_at_level(3, 3).0, 1000);
        assert_eq!(Millicores::for_vcpus_at_level(4, 3).0, 1334);
    }

    #[test]
    fn ceil_cores_rounds_up() {
        assert_eq!(Millicores(0).ceil_cores(), 0);
        assert_eq!(Millicores(1).ceil_cores(), 1);
        assert_eq!(Millicores(1000).ceil_cores(), 1);
        assert_eq!(Millicores(1001).ceil_cores(), 2);
    }

    #[test]
    fn checked_sub_reports_underflow() {
        let err = Millicores(5).checked_sub(Millicores(6)).unwrap_err();
        assert!(matches!(err, ModelError::Underflow { .. }));
        assert_eq!(
            Millicores(6).checked_sub(Millicores(6)).unwrap(),
            Millicores::ZERO
        );
    }

    #[test]
    fn resources_fits_within_is_componentwise() {
        let cap = Resources::new(4, 8192);
        assert!(Resources::new(4, 8192).fits_within(cap));
        assert!(Resources::new(0, 0).fits_within(cap));
        assert!(!Resources::new(5, 1).fits_within(cap));
        assert!(!Resources::new(1, 8193).fits_within(cap));
    }

    #[test]
    fn resources_minus_detects_both_underflows() {
        let a = Resources::new(2, 100);
        assert!(a.minus(Resources::new(3, 0)).is_err());
        assert!(a.minus(Resources::new(0, 101)).is_err());
        assert_eq!(a.minus(a).unwrap(), Resources::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Resources::new(2, 4096).to_string(), "2vCPU/4.0GiB");
        assert_eq!(Millicores(1500).to_string(), "1.500c");
    }

    proptest! {
        #[test]
        fn vcpu_cost_never_exceeds_unoversubscribed(vcpus in 0u32..512, level in 1u32..=64) {
            let at_level = Millicores::for_vcpus_at_level(vcpus, level);
            let at_one = Millicores::for_vcpus_at_level(vcpus, 1);
            prop_assert!(at_level <= at_one);
        }

        #[test]
        fn vcpu_cost_is_monotone_in_vcpus(vcpus in 0u32..512, level in 1u32..=64) {
            let lo = Millicores::for_vcpus_at_level(vcpus, level);
            let hi = Millicores::for_vcpus_at_level(vcpus + 1, level);
            prop_assert!(hi >= lo);
        }

        #[test]
        fn vcpu_cost_is_antitone_in_level(vcpus in 0u32..512, level in 1u32..64) {
            let coarse = Millicores::for_vcpus_at_level(vcpus, level);
            let fine = Millicores::for_vcpus_at_level(vcpus, level + 1);
            prop_assert!(fine <= coarse);
        }

        #[test]
        fn full_level_packs_exactly(level in 1u32..=64, cores in 1u32..64) {
            // n*cores vCPUs at n:1 fill exactly `cores` cores.
            let mc = Millicores::for_vcpus_at_level(level * cores, level);
            prop_assert_eq!(mc, Millicores::from_cores(cores));
        }

        #[test]
        fn add_sub_roundtrip(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let sum = Millicores(a) + Millicores(b);
            prop_assert_eq!(sum.checked_sub(Millicores(b)).unwrap(), Millicores(a));
        }
    }
}
