//! Physical-machine identifiers and hardware configurations.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::ratio::MemPerCore;
use crate::resources::Millicores;

/// Opaque, stable identifier of a physical machine within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PmId(pub u32);

impl std::fmt::Display for PmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pm-{}", self.0)
    }
}

/// The hardware configuration of a physical machine.
///
/// `cores` counts *schedulable CPUs* — on an SMT machine, hardware threads
/// (the paper's testbed exposes 256 threads and computes its M/C ratio as
/// 1000/256 ≈ 4 GB per thread). The topology crate models which of those
/// CPUs are SMT siblings; at this layer they are interchangeable capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PmConfig {
    /// Schedulable CPU count (hardware threads).
    pub cores: u32,
    /// DRAM capacity in MiB.
    pub mem_mib: u64,
}

impl PmConfig {
    /// Constructs a validated configuration.
    pub fn new(cores: u32, mem_mib: u64) -> Result<Self, ModelError> {
        if cores == 0 || mem_mib == 0 {
            return Err(ModelError::EmptyPmConfig { cores, mem_mib });
        }
        Ok(PmConfig { cores, mem_mib })
    }

    /// Constructs a configuration, panicking on a zero dimension.
    pub fn of(cores: u32, mem_mib: u64) -> Self {
        Self::new(cores, mem_mib).expect("non-empty PM config")
    }

    /// The simulation-scale host of paper §VII-B: 32 cores, 128 GiB
    /// (M/C ratio of 4 GiB per core).
    pub fn simulation_host() -> Self {
        PmConfig::of(32, crate::units::gib(128))
    }

    /// The physical testbed of paper Table III: 2×AMD EPYC 7662,
    /// 256 hardware threads, 1 TiB of DRAM (M/C ratio 4).
    pub fn epyc_7662_dual() -> Self {
        PmConfig::of(256, crate::units::gib(1024))
    }

    /// Total CPU capacity in millicores.
    #[inline]
    pub const fn cpu_capacity(&self) -> Millicores {
        Millicores::from_cores(self.cores)
    }

    /// The hardware's fixed *target* Memory-per-Core ratio (paper §III-B):
    /// the M/C ratio hosted VMs should collectively approximate for the
    /// machine's resources to deplete evenly.
    pub fn target_ratio(&self) -> MemPerCore {
        MemPerCore::from_mib_per_core(self.mem_mib, self.cores as f64)
    }
}

impl std::fmt::Display for PmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}c/{:.0}GiB (M/C {:.1})",
            self.cores,
            crate::units::mib_to_gib_f64(self.mem_mib),
            self.target_ratio().gib_per_core()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::gib;

    #[test]
    fn rejects_empty_dimensions() {
        assert!(PmConfig::new(0, 1).is_err());
        assert!(PmConfig::new(1, 0).is_err());
        assert!(PmConfig::new(1, 1).is_ok());
    }

    #[test]
    fn paper_hosts_have_target_ratio_four() {
        assert_eq!(
            PmConfig::simulation_host().target_ratio().gib_per_core(),
            4.0
        );
        assert_eq!(
            PmConfig::epyc_7662_dual().target_ratio().gib_per_core(),
            4.0
        );
    }

    #[test]
    fn capacity_and_display() {
        let pm = PmConfig::of(32, gib(128));
        assert_eq!(pm.cpu_capacity(), Millicores::from_cores(32));
        assert_eq!(pm.to_string(), "32c/128GiB (M/C 4.0)");
        assert_eq!(PmId(3).to_string(), "pm-3");
    }
}
