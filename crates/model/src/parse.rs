//! Compact VM-spec strings: `"4c8g"`, `"2c512m@3"`, `"1c4g@2:1"`.
//!
//! The grammar providers and CLIs use to name a shape:
//! `<vcpus>c<memory><unit>[@<level>[:1]]` with units `m` (MiB) and `g`
//! (GiB); the level defaults to 1:1.

use std::str::FromStr;

use crate::error::ModelError;
use crate::oversub::OversubLevel;
use crate::vm::VmSpec;

/// Errors raised while parsing a spec string.
#[derive(Debug, thiserror::Error, Clone, PartialEq)]
pub enum ParseSpecError {
    /// The string does not match the grammar at all.
    #[error("cannot parse {0:?} (expected e.g. \"4c8g\" or \"2c512m@3\")")]
    Malformed(String),

    /// A numeric component failed to parse.
    #[error("invalid number {0:?} in VM spec")]
    BadNumber(String),

    /// An unknown memory unit.
    #[error("unknown memory unit {0:?} (use m for MiB, g for GiB)")]
    BadUnit(char),

    /// The parsed components violate model constraints.
    #[error(transparent)]
    Model(#[from] ModelError),
}

/// ```
/// use slackvm_model::{gib, OversubLevel, VmSpec};
/// let spec: VmSpec = "2c4g@3".parse().unwrap();
/// assert_eq!(spec, VmSpec::of(2, gib(4), OversubLevel::of(3)));
/// ```
impl FromStr for VmSpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (shape, level) = match s.split_once('@') {
            None => (s, OversubLevel::PREMIUM),
            Some((shape, level_raw)) => {
                let n_raw = level_raw.strip_suffix(":1").unwrap_or(level_raw);
                let n: u32 = n_raw
                    .parse()
                    .map_err(|_| ParseSpecError::BadNumber(level_raw.to_string()))?;
                (shape, OversubLevel::new(n)?)
            }
        };
        let (vcpus_raw, mem_raw) = shape
            .split_once(['c', 'C'])
            .ok_or_else(|| ParseSpecError::Malformed(s.to_string()))?;
        let vcpus: u32 = vcpus_raw
            .trim()
            .parse()
            .map_err(|_| ParseSpecError::BadNumber(vcpus_raw.to_string()))?;
        let mem_raw = mem_raw.trim();
        if mem_raw.is_empty() {
            return Err(ParseSpecError::Malformed(s.to_string()));
        }
        let unit = mem_raw
            .chars()
            .next_back()
            .expect("non-empty checked above");
        let amount_raw = &mem_raw[..mem_raw.len() - unit.len_utf8()];
        let amount: u64 = amount_raw
            .trim()
            .parse()
            .map_err(|_| ParseSpecError::BadNumber(amount_raw.to_string()))?;
        let mem_mib = match unit.to_ascii_lowercase() {
            'm' => amount,
            'g' => amount * crate::units::MIB_PER_GIB,
            other => return Err(ParseSpecError::BadUnit(other)),
        };
        Ok(VmSpec::new(vcpus, mem_mib, level)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::gib;

    #[test]
    fn canonical_forms_parse() {
        let spec: VmSpec = "4c8g".parse().unwrap();
        assert_eq!(spec, VmSpec::of(4, gib(8), OversubLevel::PREMIUM));
        let spec: VmSpec = "2c512m@3".parse().unwrap();
        assert_eq!(spec, VmSpec::of(2, 512, OversubLevel::of(3)));
        let spec: VmSpec = "1c4g@2:1".parse().unwrap();
        assert_eq!(spec, VmSpec::of(1, gib(4), OversubLevel::of(2)));
    }

    #[test]
    fn whitespace_and_case_are_tolerated() {
        let spec: VmSpec = " 8C16G ".parse().unwrap();
        assert_eq!(spec, VmSpec::of(8, gib(16), OversubLevel::PREMIUM));
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(
            "4x8g".parse::<VmSpec>().unwrap_err(),
            ParseSpecError::Malformed(_)
        ));
        assert!(matches!(
            "ac8g".parse::<VmSpec>().unwrap_err(),
            ParseSpecError::BadNumber(_)
        ));
        assert!(matches!(
            "4c8t".parse::<VmSpec>().unwrap_err(),
            ParseSpecError::BadUnit('t')
        ));
        assert!(matches!(
            "4c8g@99".parse::<VmSpec>().unwrap_err(),
            ParseSpecError::Model(ModelError::InvalidOversubLevel(99))
        ));
        assert!(matches!(
            "0c8g".parse::<VmSpec>().unwrap_err(),
            ParseSpecError::Model(ModelError::EmptyVmSpec { .. })
        ));
        assert!(matches!(
            "4c".parse::<VmSpec>().unwrap_err(),
            ParseSpecError::Malformed(_)
        ));
        assert!(matches!(
            "4cg".parse::<VmSpec>().unwrap_err(),
            ParseSpecError::BadNumber(_)
        ));
    }

    #[test]
    fn display_roundtrip_equivalence() {
        // Display is "<v>vCPU/<g>GiB @ n:1"; parsing its own compact form
        // back should produce the same spec.
        let original = VmSpec::of(2, gib(4), OversubLevel::of(3));
        let compact = format!(
            "{}c{}g@{}",
            original.vcpus(),
            original.mem_mib() / 1024,
            original.level.ratio()
        );
        let reparsed: VmSpec = compact.parse().unwrap();
        assert_eq!(original, reparsed);
    }
}
