//! Memory-per-Core ratio arithmetic.
//!
//! The paper's central observable (§III): comparing the M/C ratio of a
//! PM's *hardware* with the M/C ratio of the VMs *allocated* on it tells
//! which resource will strand. Workload ratio above hardware ratio ⇒
//! memory saturates first, CPU strands; below ⇒ the converse.

use serde::{Deserialize, Serialize};

use crate::units::MIB_PER_GIB;

/// A Memory-per-Core ratio in GiB per physical core.
///
/// Wrapped to keep GiB-per-core semantics explicit at API boundaries and
/// to centralize the comparison logic used by the global scheduler.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MemPerCore(f64);

impl MemPerCore {
    /// Constructs a ratio from a GiB-per-core value.
    #[inline]
    pub fn from_gib_per_core(ratio: f64) -> Self {
        MemPerCore(ratio)
    }

    /// Computes `mem_mib / cores`, expressed in GiB per core.
    ///
    /// `cores` is an `f64` so callers can pass fractional (millicore-derived)
    /// core counts. Zero or negative `cores` yields an infinite ratio, which
    /// correctly compares as "maximally memory-heavy".
    pub fn from_mib_per_core(mem_mib: u64, cores: f64) -> Self {
        if cores <= 0.0 {
            MemPerCore(f64::INFINITY)
        } else {
            MemPerCore(mem_mib as f64 / MIB_PER_GIB as f64 / cores)
        }
    }

    /// The ratio as GiB per core.
    #[inline]
    pub fn gib_per_core(self) -> f64 {
        self.0
    }

    /// Absolute distance to another ratio (the `Δ` of Algorithm 2).
    #[inline]
    pub fn distance(self, other: MemPerCore) -> f64 {
        (self.0 - other.0).abs()
    }

    /// The bias of a workload ratio relative to a hardware target ratio
    /// (paper §III-B's "identifying the limiting factor").
    pub fn bias_against(self, target: MemPerCore) -> ResourceBias {
        // Within 3% of the target we call it balanced, mirroring the
        // paper's "2:1 is balanced (3.9 ≈ 4)" reading for OVHcloud.
        let rel = (self.0 - target.0) / target.0;
        if rel > 0.03 {
            ResourceBias::MemoryBound
        } else if rel < -0.03 {
            ResourceBias::CpuBound
        } else {
            ResourceBias::Balanced
        }
    }
}

impl std::fmt::Display for MemPerCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} GiB/core", self.0)
    }
}

/// Which physical resource a workload saturates first on given hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceBias {
    /// CPU saturates first; memory strands (workload M/C below hardware M/C).
    CpuBound,
    /// Resources deplete roughly together.
    Balanced,
    /// Memory saturates first; CPU strands (workload M/C above hardware M/C).
    MemoryBound,
}

impl std::fmt::Display for ResourceBias {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ResourceBias::CpuBound => "CPU-bound",
            ResourceBias::Balanced => "balanced",
            ResourceBias::MemoryBound => "memory-bound",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::gib;
    use proptest::prelude::*;

    #[test]
    fn from_mib_per_core_basic() {
        let r = MemPerCore::from_mib_per_core(gib(128), 32.0);
        assert_eq!(r.gib_per_core(), 4.0);
        assert!(MemPerCore::from_mib_per_core(gib(1), 0.0)
            .gib_per_core()
            .is_infinite());
    }

    #[test]
    fn paper_section3_biases_reproduce() {
        // Paper §III-B, PM target ratio 4 GiB/core, Azure dataset:
        // 1:1 at 2.1 -> highly CPU-bound; 2:1 at 3.0 -> CPU-bound;
        // 3:1 at 4.5 -> memory-bound. OVH 2:1 at 3.9 -> balanced.
        let target = MemPerCore::from_gib_per_core(4.0);
        let bias = |v: f64| MemPerCore::from_gib_per_core(v).bias_against(target);
        assert_eq!(bias(2.1), ResourceBias::CpuBound);
        assert_eq!(bias(3.0), ResourceBias::CpuBound);
        assert_eq!(bias(4.5), ResourceBias::MemoryBound);
        assert_eq!(bias(3.9), ResourceBias::Balanced);
        assert_eq!(bias(5.8), ResourceBias::MemoryBound);
        assert_eq!(bias(3.1), ResourceBias::CpuBound);
    }

    #[test]
    fn distance_is_symmetric_zero_on_self() {
        let a = MemPerCore::from_gib_per_core(2.5);
        let b = MemPerCore::from_gib_per_core(4.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
        assert!((a.distance(b) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(
            MemPerCore::from_gib_per_core(3.875).to_string(),
            "3.88 GiB/core"
        );
        assert_eq!(ResourceBias::CpuBound.to_string(), "CPU-bound");
    }

    proptest! {
        #[test]
        fn distance_satisfies_triangle_inequality(
            a in 0.0f64..100.0, b in 0.0f64..100.0, c in 0.0f64..100.0,
        ) {
            let (ra, rb, rc) = (
                MemPerCore::from_gib_per_core(a),
                MemPerCore::from_gib_per_core(b),
                MemPerCore::from_gib_per_core(c),
            );
            prop_assert!(ra.distance(rc) <= ra.distance(rb) + rb.distance(rc) + 1e-9);
        }

        #[test]
        fn bias_is_monotone(v in 0.01f64..100.0, t in 0.01f64..100.0) {
            let target = MemPerCore::from_gib_per_core(t);
            let bias = MemPerCore::from_gib_per_core(v).bias_against(target);
            if v > t * 1.03 + 1e-12 {
                prop_assert_eq!(bias, ResourceBias::MemoryBound);
            } else if v < t * 0.97 - 1e-12 {
                prop_assert_eq!(bias, ResourceBias::CpuBound);
            }
        }
    }
}
