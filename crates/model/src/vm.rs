//! Virtual-machine identifiers and specifications.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::oversub::OversubLevel;
use crate::resources::{Millicores, Resources};

/// Opaque, stable identifier of a VM within a workload or cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VmId(pub u64);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// What a tenant requested: a resource vector plus the oversubscription
/// tier the VM was purchased at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VmSpec {
    /// Requested virtual resources.
    pub request: Resources,
    /// Purchased oversubscription level.
    pub level: OversubLevel,
}

impl VmSpec {
    /// Constructs a validated specification.
    pub fn new(vcpus: u32, mem_mib: u64, level: OversubLevel) -> Result<Self, ModelError> {
        if vcpus == 0 || mem_mib == 0 {
            return Err(ModelError::EmptyVmSpec { vcpus, mem_mib });
        }
        Ok(VmSpec {
            request: Resources::new(vcpus, mem_mib),
            level,
        })
    }

    /// Constructs a specification, panicking on a zero dimension.
    pub fn of(vcpus: u32, mem_mib: u64, level: OversubLevel) -> Self {
        Self::new(vcpus, mem_mib, level).expect("non-empty VM spec")
    }

    /// Requested vCPU count.
    #[inline]
    pub const fn vcpus(&self) -> u32 {
        self.request.vcpus
    }

    /// Requested memory in MiB.
    #[inline]
    pub const fn mem_mib(&self) -> u64 {
        self.request.mem_mib
    }

    /// Physical-core consumption after oversubscription.
    #[inline]
    pub const fn physical_cpu(&self) -> Millicores {
        self.level.physical_cost(self.request.vcpus)
    }

    /// Memory-per-core ratio of the *provisioned* (physical) resources, in
    /// GiB per core — the per-VM contribution to the workload M/C ratio of
    /// paper §III.
    pub fn provisioned_mc_ratio(&self) -> f64 {
        let cores = self.physical_cpu().as_cores_f64();
        crate::units::mib_to_gib_f64(self.request.mem_mib) / cores
    }
}

impl std::fmt::Display for VmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ {}", self.request, self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::gib;
    use proptest::prelude::*;

    #[test]
    fn rejects_empty_dimensions() {
        let l = OversubLevel::PREMIUM;
        assert!(VmSpec::new(0, 1024, l).is_err());
        assert!(VmSpec::new(1, 0, l).is_err());
        assert!(VmSpec::new(1, 1, l).is_ok());
    }

    #[test]
    fn physical_cpu_shrinks_with_level() {
        let v1 = VmSpec::of(2, gib(4), OversubLevel::of(1));
        let v2 = VmSpec::of(2, gib(4), OversubLevel::of(2));
        assert_eq!(v1.physical_cpu(), Millicores::from_cores(2));
        assert_eq!(v2.physical_cpu(), Millicores::from_cores(1));
    }

    #[test]
    fn provisioned_mc_ratio_matches_paper_intuition() {
        // A 2 vCPU / 4 GiB VM: M/C = 2.0 at 1:1, 4.0 at 2:1, ~6.0 at 3:1.
        let mk = |n| VmSpec::of(2, gib(4), OversubLevel::of(n)).provisioned_mc_ratio();
        assert!((mk(1) - 2.0).abs() < 1e-9);
        assert!((mk(2) - 4.0).abs() < 1e-9);
        assert!((mk(3) - 6.0).abs() < 0.02); // millicore ceil introduces <1% skew
    }

    #[test]
    fn vmid_display() {
        assert_eq!(VmId(42).to_string(), "vm-42");
    }

    #[test]
    fn serde_roundtrip() {
        let spec = VmSpec::of(4, gib(8), OversubLevel::of(3));
        let json = serde_json::to_string(&spec).unwrap();
        let back: VmSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    proptest! {
        #[test]
        fn mc_ratio_scales_linearly_with_level(
            vcpus in 1u32..64,
            mem in 1u64..1_048_576,
            n in 1u32..=8,
        ) {
            // Only exact when level divides vcpus*1000; use n dividing 1000.
            prop_assume!(1000 % n == 0);
            let base = VmSpec::of(vcpus, mem, OversubLevel::of(1)).provisioned_mc_ratio();
            let lev = VmSpec::of(vcpus, mem, OversubLevel::of(n)).provisioned_mc_ratio();
            prop_assert!((lev - base * n as f64).abs() < 1e-6 * base.max(1.0) * n as f64);
        }
    }
}
