//! Allocation snapshots — the `allocPM` input of paper Algorithm 2.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::pm::PmConfig;
use crate::ratio::MemPerCore;
use crate::resources::Millicores;
use crate::vm::VmSpec;

/// A point-in-time view of a PM's *physical* allocation.
///
/// Oversubscribed vNodes are accounted through the PM's physical
/// resources (a 3:1 vNode hosting 6 vCPUs contributes 2 cores), exactly as
/// the paper prescribes ("Allocations considered in this algorithm are
/// based on PM resource usages", §VI) — this is what lets Algorithm 2
/// accommodate every oversubscription level with one formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AllocView {
    /// Physical CPU currently allocated.
    pub cpu: Millicores,
    /// Memory currently allocated, in MiB.
    pub mem_mib: u64,
}

impl AllocView {
    /// The empty allocation.
    pub const EMPTY: AllocView = AllocView {
        cpu: Millicores::ZERO,
        mem_mib: 0,
    };

    /// Constructs a view from raw parts.
    #[inline]
    pub const fn new(cpu: Millicores, mem_mib: u64) -> Self {
        AllocView { cpu, mem_mib }
    }

    /// True when nothing is allocated.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.cpu.is_zero() && self.mem_mib == 0
    }

    /// The view after adding a VM's physical consumption.
    #[inline]
    pub fn with_vm(self, vm: &VmSpec) -> AllocView {
        AllocView {
            cpu: self.cpu + vm.physical_cpu(),
            mem_mib: self.mem_mib + vm.mem_mib(),
        }
    }

    /// The view after removing a VM's physical consumption.
    pub fn without_vm(self, vm: &VmSpec) -> Result<AllocView, ModelError> {
        let cpu = self.cpu.checked_sub(vm.physical_cpu())?;
        let mem_mib = self
            .mem_mib
            .checked_sub(vm.mem_mib())
            .ok_or(ModelError::Underflow {
                what: "MiB",
                requested: vm.mem_mib(),
                available: self.mem_mib,
            })?;
        Ok(AllocView { cpu, mem_mib })
    }

    /// The allocated-workload M/C ratio (`currentRatio` of Algorithm 2).
    /// Infinite when no CPU is allocated; callers guard on [`Self::is_empty`].
    pub fn mc_ratio(&self) -> MemPerCore {
        MemPerCore::from_mib_per_core(self.mem_mib, self.cpu.as_cores_f64())
    }

    /// Remaining capacity against a configuration, clamped at zero.
    pub fn headroom(&self, config: &PmConfig) -> AllocView {
        AllocView {
            cpu: Millicores(config.cpu_capacity().0.saturating_sub(self.cpu.0)),
            mem_mib: config.mem_mib.saturating_sub(self.mem_mib),
        }
    }

    /// Fraction of the configuration's CPU left unallocated, in `[0, 1]`.
    pub fn unallocated_cpu_share(&self, config: &PmConfig) -> f64 {
        let cap = config.cpu_capacity().0 as f64;
        (cap - self.cpu.0 as f64).max(0.0) / cap
    }

    /// Fraction of the configuration's memory left unallocated, in `[0, 1]`.
    pub fn unallocated_mem_share(&self, config: &PmConfig) -> f64 {
        let cap = config.mem_mib as f64;
        (cap - self.mem_mib as f64).max(0.0) / cap
    }

    /// CPU load fraction `allocPM(cpu) / configPM(cpu)` — the multiplier
    /// base of Algorithm 2 lines 12–15.
    pub fn cpu_load_fraction(&self, config: &PmConfig) -> f64 {
        self.cpu.0 as f64 / config.cpu_capacity().0 as f64
    }
}

impl std::fmt::Display for AllocView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cpu / {:.1} GiB",
            self.cpu,
            crate::units::mib_to_gib_f64(self.mem_mib)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oversub::OversubLevel;
    use crate::units::gib;
    use proptest::prelude::*;

    fn vm(vcpus: u32, mem_gib: u64, level: u32) -> VmSpec {
        VmSpec::of(vcpus, gib(mem_gib), OversubLevel::of(level))
    }

    #[test]
    fn with_without_roundtrip() {
        let v = vm(2, 4, 2);
        let a = AllocView::EMPTY.with_vm(&v);
        assert_eq!(a.cpu, Millicores::from_cores(1));
        assert_eq!(a.mem_mib, gib(4));
        assert_eq!(a.without_vm(&v).unwrap(), AllocView::EMPTY);
    }

    #[test]
    fn without_vm_underflows_cleanly() {
        let v = vm(2, 4, 1);
        assert!(AllocView::EMPTY.without_vm(&v).is_err());
    }

    #[test]
    fn mc_ratio_of_allocation() {
        let a = AllocView::EMPTY.with_vm(&vm(2, 8, 1)); // 2 cores, 8 GiB
        assert!((a.mc_ratio().gib_per_core() - 4.0).abs() < 1e-12);
        assert!(AllocView::EMPTY.mc_ratio().gib_per_core().is_infinite());
    }

    #[test]
    fn unallocated_shares_against_sim_host() {
        let cfg = PmConfig::simulation_host(); // 32c / 128 GiB
        let a = AllocView::new(Millicores::from_cores(8), gib(32));
        assert!((a.unallocated_cpu_share(&cfg) - 0.75).abs() < 1e-12);
        assert!((a.unallocated_mem_share(&cfg) - 0.75).abs() < 1e-12);
        assert!((a.cpu_load_fraction(&cfg) - 0.25).abs() < 1e-12);
        let h = a.headroom(&cfg);
        assert_eq!(h.cpu, Millicores::from_cores(24));
        assert_eq!(h.mem_mib, gib(96));
    }

    #[test]
    fn headroom_clamps_at_zero() {
        let cfg = PmConfig::of(1, 1024);
        let over = AllocView::new(Millicores::from_cores(2), 2048);
        let h = over.headroom(&cfg);
        assert_eq!(h, AllocView::EMPTY);
        assert_eq!(over.unallocated_cpu_share(&cfg), 0.0);
    }

    proptest! {
        #[test]
        fn add_remove_is_identity(
            vcpus in 1u32..32, mem in 1u64..65_536, level in 1u32..=4,
            base_cpu in 0u64..100_000, base_mem in 0u64..1_000_000,
        ) {
            let v = VmSpec::of(vcpus, mem, OversubLevel::of(level));
            let base = AllocView::new(Millicores(base_cpu), base_mem);
            prop_assert_eq!(base.with_vm(&v).without_vm(&v).unwrap(), base);
        }

        #[test]
        fn shares_stay_in_unit_interval(
            cpu in 0u64..200_000, mem in 0u64..10_000_000,
        ) {
            let cfg = PmConfig::simulation_host();
            let a = AllocView::new(Millicores(cpu), mem);
            let c = a.unallocated_cpu_share(&cfg);
            let m = a.unallocated_mem_share(&cfg);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!((0.0..=1.0).contains(&m));
        }
    }
}
