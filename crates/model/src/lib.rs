//! # slackvm-model
//!
//! Shared domain types for the SlackVM reproduction.
//!
//! This crate defines the vocabulary every other crate in the workspace
//! speaks: resource vectors ([`Resources`]), oversubscription levels
//! ([`OversubLevel`]) and policies ([`OversubPolicy`]), virtual-machine
//! specifications ([`VmSpec`]) and identifiers ([`VmId`]), physical-machine
//! configurations ([`PmConfig`]), allocation snapshots ([`AllocView`]) and
//! the *Memory-per-Core* ratio arithmetic ([`MemPerCore`]) at the heart of
//! the paper's global-scheduler metric (Algorithm 2).
//!
//! Everything here is plain data: no I/O, no randomness, no scheduling
//! policy. CPU quantities that may be fractional (a 1-vCPU VM at 3:1
//! oversubscription consumes a third of a physical core) are carried in
//! integer *millicores* to keep accounting exact and hashable.

#![warn(missing_docs)]

pub mod alloc;
pub mod error;
pub mod oversub;
pub mod parse;
pub mod pm;
pub mod ratio;
pub mod resources;
pub mod units;
pub mod vm;

pub use alloc::AllocView;
pub use error::ModelError;
pub use oversub::{OversubLevel, OversubPolicy};
pub use parse::ParseSpecError;
pub use pm::{PmConfig, PmId};
pub use ratio::MemPerCore;
pub use resources::{Millicores, Resources};
pub use units::{gib, mib, MIB_PER_GIB};
pub use vm::{VmId, VmSpec};
