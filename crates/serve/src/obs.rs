//! The always-on observability plane: a dedicated background HTTP
//! listener serving `/metrics`, `/healthz`, and `/slo` off the request
//! path.
//!
//! The request listener answers `GET /metrics` too (handy for a quick
//! `curl` against the service port), but a scrape there competes with
//! admission traffic for accept slots and connection threads. The
//! [`ObsServer`] binds its own port (`serve --obs-addr`) and serves
//! scrapes, health probes, and SLO queries from an [`ObsHandle`] — a
//! bundle of shared views onto the live service — so the observability
//! plane keeps answering even while every request thread is saturated.
//!
//! - `/metrics` — the Prometheus exposition (same snapshot the request
//!   listener serves).
//! - `/healthz` — per-shard worker liveness and fault-plane state.
//!   Workers stamp a heartbeat every loop turn, including idle
//!   timeouts; a heartbeat older than the configured stall threshold
//!   flips the endpoint to `503` with a JSON report naming the wedged
//!   shard, as does a journal-degraded shard. Failed/draining PM
//!   counts, evacuation progress, and lost-VM IDs ride along without
//!   affecting the verdict.
//! - `/slo` — the rolling-window scorecard: p99 latency vs target,
//!   shed rate, remaining error budget.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use slackvm_model::VmId;
use slackvm_telemetry::{prometheus, MetricsRegistry, SloReport, SloTracker, TimeSeriesStore};

use crate::error::ServeError;
use crate::shard::{ms_since, ShardSummary};

/// Shared views onto a live service, detached from its lifetime
/// management: everything the observability listener needs, nothing it
/// could wedge. Obtained from
/// [`PlacementService::obs_handle`](crate::PlacementService::obs_handle).
pub struct ObsHandle {
    pub(crate) metrics: Arc<Mutex<MetricsRegistry>>,
    pub(crate) series: Option<Arc<Mutex<TimeSeriesStore>>>,
    pub(crate) summaries: Arc<Vec<ShardSummary>>,
    pub(crate) slo: Arc<Mutex<SloTracker>>,
    pub(crate) epoch: Instant,
    pub(crate) stall_threshold: Duration,
    pub(crate) lost: Arc<Mutex<Vec<VmId>>>,
}

impl ObsHandle {
    /// The Prometheus exposition (metrics plus, when sampling is on,
    /// the time-series gauges) — the same snapshot
    /// `PlacementService::metrics_exposition` renders.
    pub fn exposition(&self) -> String {
        let m = self.metrics.lock().expect("metrics lock");
        match self.series.as_ref() {
            Some(store) => {
                let s = store.lock().expect("series lock");
                prometheus::render(&m, Some(&s))
            }
            None => prometheus::render(&m, None),
        }
    }

    /// Per-shard worker liveness and fault-plane state as of now.
    pub fn health(&self) -> HealthReport {
        let now_ms = ms_since(self.epoch);
        let stall_ms = self.stall_threshold.as_millis() as u64;
        let shards = self
            .summaries
            .iter()
            .enumerate()
            .map(|(idx, s)| {
                let beat_age_ms = now_ms.saturating_sub(s.last_beat_ms());
                ShardHealth {
                    shard: idx as u32,
                    queued: s.queued(),
                    beat_age_ms,
                    stalled: beat_age_ms > stall_ms,
                    failed_pms: s.failed_pms(),
                    draining_pms: s.draining_pms(),
                    evac_pending: s.evac_pending(),
                    journal_degraded: s.journal_degraded(),
                }
            })
            .collect();
        let lost_vms = self.lost.lock().expect("lost ledger lock").clone();
        HealthReport {
            stall_ms,
            shards,
            lost_vms,
        }
    }

    /// The rolling-window SLO scorecard as of now.
    pub fn slo(&self) -> SloReport {
        self.slo
            .lock()
            .expect("slo lock")
            .report(ms_since(self.epoch))
    }
}

/// One shard's liveness line in a [`HealthReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: u32,
    /// Requests queued at the shard right now.
    pub queued: usize,
    /// Milliseconds since the worker's last heartbeat.
    pub beat_age_ms: u64,
    /// Whether the heartbeat is older than the stall threshold.
    pub stalled: bool,
    /// PMs currently failed on this shard.
    pub failed_pms: u64,
    /// PMs currently draining on this shard. A draining shard stays
    /// healthy; this plus `evac_pending` is its progress report.
    pub draining_pms: u64,
    /// Displaced VMs this shard forwarded into the ring whose
    /// evacuation has not resolved yet (zero once the drain settles).
    pub evac_pending: u64,
    /// Whether the shard serves without durability after a journal
    /// write failure. Flips `/healthz` to 503.
    pub journal_degraded: bool,
}

/// The `/healthz` verdict: every shard's heartbeat age against the
/// stall threshold, plus the fault plane's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// The stall threshold in force, milliseconds.
    pub stall_ms: u64,
    /// One line per shard, in shard order.
    pub shards: Vec<ShardHealth>,
    /// VMs lost to evacuation so far, by ID.
    pub lost_vms: Vec<VmId>,
}

/// At most this many lost-VM IDs are enumerated in the health JSON
/// (the full count is always reported).
const LOST_VMS_LISTED: usize = 32;

impl HealthReport {
    /// Healthy iff no shard is stalled or journal-degraded. Failed or
    /// draining PMs do not unhealth the service: evacuating around
    /// failures is the plane working as designed.
    pub fn healthy(&self) -> bool {
        self.shards.iter().all(|s| !s.stalled && !s.journal_degraded)
    }

    /// The report as one JSON object (hand-rolled, like the wire
    /// protocol — no serialization framework on the service path).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"healthy\":{},\"stall_ms\":{},\"shards\":[",
            self.healthy(),
            self.stall_ms
        );
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{},\"queued\":{},\"beat_age_ms\":{},\"stalled\":{},\
                 \"failed_pms\":{},\"draining_pms\":{},\"evac_pending\":{},\
                 \"journal_degraded\":{}}}",
                s.shard,
                s.queued,
                s.beat_age_ms,
                s.stalled,
                s.failed_pms,
                s.draining_pms,
                s.evac_pending,
                s.journal_degraded
            ));
        }
        out.push_str(&format!("],\"lost_total\":{},\"lost_vms\":[", self.lost_vms.len()));
        for (i, vm) in self.lost_vms.iter().take(LOST_VMS_LISTED).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&vm.0.to_string());
        }
        out.push_str("]}");
        out
    }
}

/// Renders a complete HTTP/1.1 response with correct framing
/// (`Content-Length`, `Connection: close`) — shared by the dedicated
/// listener and the request listener's `GET` path.
pub(crate) fn http_response(status: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Routes one `GET` path to its endpoint and renders the full HTTP
/// response.
pub(crate) fn respond(path: &str, handle: &ObsHandle) -> String {
    // Strip any query string: probes often add cache-busters.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" | "/" => http_response(
            "200 OK",
            "text/plain; version=0.0.4",
            &handle.exposition(),
        ),
        "/healthz" => {
            let health = handle.health();
            let status = if health.healthy() {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            http_response(status, "application/json", &health.to_json())
        }
        "/slo" => {
            // The consolidation and pressure planes pause themselves on
            // error-budget burn, so their progress rides on the SLO
            // scorecard: splice fleet-wide totals into the JSON object.
            let mut body = handle.slo().to_json();
            let migrations: u64 = handle
                .summaries
                .iter()
                .map(|s| s.rebalance_migrations())
                .sum();
            let freed: u64 = handle.summaries.iter().map(|s| s.rebalance_pms_freed()).sum();
            let spread: u64 = handle
                .summaries
                .iter()
                .map(|s| s.pressure_migrations())
                .sum();
            let hot: u64 = handle.summaries.iter().map(|s| s.pressure_hot_pms()).sum();
            if body.ends_with('}') {
                body.pop();
                body.push_str(&format!(
                    ",\"rebalance\":{{\"migrations\":{migrations},\"pms_freed\":{freed}}},\
                     \"pressure\":{{\"migrations\":{spread},\"hot_pms\":{hot}}}}}"
                ));
            }
            http_response("200 OK", "application/json", &body)
        }
        _ => http_response("404 Not Found", "text/plain", "not found\n"),
    }
}

/// The dedicated observability listener: one background thread, one
/// HTTP request per connection.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<u64>>,
}

impl ObsServer {
    /// Binds `addr` (port 0 for ephemeral) and starts serving `handle`
    /// in a background thread.
    pub fn start(addr: &str, handle: ObsHandle) -> Result<ObsServer, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_seen = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("slackvm-obs".into())
            .spawn(move || {
                let mut served = 0u64;
                for conn in listener.incoming() {
                    if stop_seen.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    served += serve_one(stream, &handle);
                }
                served
            })
            .map_err(ServeError::Io)?;
        Ok(ObsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (the resolved port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and returns how many requests it served.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        self.thread
            .take()
            .and_then(|t| t.join().ok())
            .unwrap_or_default()
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::Relaxed);
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

/// Serves one HTTP request on `stream`. Returns 1 when a well-formed
/// `GET` was answered (the shutdown wake-up connection reads as 0).
fn serve_one(stream: TcpStream, handle: &ObsHandle) -> u64 {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return 0,
    };
    let mut first_line = String::new();
    if BufReader::new(stream).read_line(&mut first_line).is_err() {
        return 0;
    }
    let mut parts = first_line.split_whitespace();
    let response = match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => respond(path, handle),
        (Some(_), _) => http_response("405 Method Not Allowed", "text/plain", "GET only\n"),
        (None, _) => return 0,
    };
    let _ = writer.write_all(response.as_bytes());
    let _ = writer.flush();
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_telemetry::SloTargets;

    fn handle_with(stall: Duration) -> ObsHandle {
        let summaries: Arc<Vec<ShardSummary>> = Arc::new(vec![ShardSummary::default()]);
        summaries[0].heartbeat(0);
        ObsHandle {
            metrics: Arc::new(Mutex::new(MetricsRegistry::new())),
            series: None,
            summaries,
            slo: Arc::new(Mutex::new(SloTracker::new(SloTargets::default()))),
            epoch: Instant::now(),
            stall_threshold: stall,
            lost: Arc::new(Mutex::new(Vec::new())),
        }
    }

    #[test]
    fn http_framing_carries_content_length() {
        let response = http_response("200 OK", "text/plain", "hello");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.contains("Content-Length: 5\r\n"));
        assert!(response.ends_with("\r\n\r\nhello"));
    }

    #[test]
    fn health_flips_when_the_heartbeat_goes_stale() {
        let handle = handle_with(Duration::from_secs(3600));
        let health = handle.health();
        assert!(health.healthy(), "{health:?}");
        assert!(health.to_json().contains("\"healthy\":true"));

        let stale = handle_with(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(20));
        let health = stale.health();
        assert!(!health.healthy(), "{health:?}");
        assert!(health.shards[0].stalled);
        assert!(health.to_json().contains("\"stalled\":true"));
    }

    #[test]
    fn unknown_paths_get_404_and_non_get_405() {
        let handle = handle_with(Duration::from_secs(1));
        assert!(respond("/nope", &handle).starts_with("HTTP/1.1 404"));
        assert!(respond("/metrics?x=1", &handle).starts_with("HTTP/1.1 200"));
        assert!(respond("/slo", &handle).contains("\"error_budget_remaining\""));
    }

    #[test]
    fn obs_server_round_trip_over_tcp() {
        use std::io::Read;
        let server = ObsServer::start("127.0.0.1:0", handle_with(Duration::from_secs(3600)))
            .unwrap();
        let addr = server.local_addr();
        let mut probe = |path: &str| -> String {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            stream.read_to_string(&mut out).unwrap();
            out
        };
        assert!(probe("/healthz").starts_with("HTTP/1.1 200"));
        assert!(probe("/slo").contains("\"p99_us\""));
        let metrics = probe("/metrics");
        assert!(metrics.contains("Content-Length:"), "{metrics}");
        assert!(server.stop() >= 3);
    }
}
