//! Deterministic trace replay through the service.
//!
//! [`serve_replay`] drives a workload trace through a running
//! [`PlacementService`] with the same event discipline as the offline
//! engine (`slackvm_sim::run_packing`): it reuses the simulator's
//! [`EventQueue`] — arrivals and resizes from the trace, departures
//! synthesized at `departure_secs.max(t + 1)` on successful placement —
//! and submits each event synchronously. Against a single-shard service
//! in deterministic mode, the decision sequence is therefore identical
//! to the offline replay, placement for placement (proven by
//! `tests/serve_differential.rs`).

use slackvm_model::VmId;
use slackvm_sim::{EventQueue, SimEvent};
use slackvm_workload::{Workload, WorkloadEvent};

use crate::error::ServeError;
use crate::request::{Op, Outcome};
use crate::service::PlacementService;

/// One placement decision, in trace order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Simulated arrival time.
    pub time_secs: u64,
    /// The VM the arrival concerned.
    pub vm: VmId,
    /// `Some(pm)` when placed, `None` when rejected.
    pub pm: Option<slackvm_model::PmId>,
}

/// Totals of a [`serve_replay`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Placement decisions in trace order (one per arrival).
    pub decisions: Vec<Decision>,
    /// Arrivals placed.
    pub placed: u64,
    /// Arrivals rejected.
    pub rejected: u64,
    /// Departures executed.
    pub removed: u64,
    /// Resizes the fleet absorbed.
    pub resizes_accepted: u64,
    /// Resizes declined (old size stays in force).
    pub resizes_declined: u64,
}

/// Replays `workload` through `service`, synchronously — each event's
/// reply is awaited before the next event is dispatched, so the service
/// observes the trace in exactly the offline engine's order.
pub fn serve_replay(
    workload: &Workload,
    service: &PlacementService,
) -> Result<ReplaySummary, ServeError> {
    let mut queue = EventQueue::new();
    for (t, event) in &workload.events {
        match event {
            WorkloadEvent::Arrival(vm) => queue.push(*t, SimEvent::Arrival(vm.clone())),
            WorkloadEvent::Resize { id, vcpus, mem_mib } => queue.push(
                *t,
                SimEvent::Resize {
                    id: *id,
                    vcpus: *vcpus,
                    mem_mib: *mem_mib,
                },
            ),
            // Departures are synthesized from each placement, exactly
            // like the offline engine.
            WorkloadEvent::Departure { .. } => {}
        }
    }

    let mut summary = ReplaySummary::default();
    while let Some((t, event)) = queue.pop() {
        match event {
            SimEvent::Arrival(vm) => {
                let reply = service.call(Op::Place {
                    id: vm.id,
                    spec: vm.spec,
                })?;
                match reply.outcome {
                    Outcome::Placed(pm) => {
                        summary.placed += 1;
                        summary.decisions.push(Decision {
                            time_secs: t,
                            vm: vm.id,
                            pm: Some(pm),
                        });
                        queue.push(vm.departure_secs.max(t + 1), SimEvent::Departure(vm.id));
                    }
                    Outcome::Rejected => {
                        summary.rejected += 1;
                        summary.decisions.push(Decision {
                            time_secs: t,
                            vm: vm.id,
                            pm: None,
                        });
                    }
                    other => {
                        return Err(ServeError::BadRequest(format!(
                            "unexpected reply to a placement: {other:?}"
                        )))
                    }
                }
            }
            SimEvent::Departure(id) => {
                let reply = service.call(Op::Remove { id })?;
                match reply.outcome {
                    Outcome::Removed(_) => summary.removed += 1,
                    other => {
                        return Err(ServeError::BadRequest(format!(
                            "departure of a placed VM answered {other:?}"
                        )))
                    }
                }
            }
            SimEvent::Resize { id, vcpus, mem_mib } => {
                // Resizes may target never-placed (rejected) VMs; the
                // offline engine treats those as declined no-ops too.
                let reply = service.call(Op::Resize { id, vcpus, mem_mib })?;
                match reply.outcome {
                    Outcome::Resized { accepted: true } => summary.resizes_accepted += 1,
                    _ => summary.resizes_declined += 1,
                }
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ModelSpec, ServeConfig};
    use slackvm_workload::scenarios;

    fn deterministic_service() -> PlacementService {
        PlacementService::start(ServeConfig {
            shards: 1,
            deterministic: true,
            model: ModelSpec::default_shared(),
            ..ServeConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn replay_drains_fully_on_an_elastic_fleet() {
        let workload = scenarios::paper_week_f(40).generate(7);
        let svc = deterministic_service();
        let summary = serve_replay(&workload, &svc).unwrap();
        assert_eq!(summary.rejected, 0, "elastic fleets never reject");
        assert_eq!(summary.placed, summary.removed, "every placement departs");
        assert_eq!(summary.decisions.len() as u64, summary.placed);
        let report = svc.stop();
        let (alloc, _) = report.shards[0].model.totals();
        assert!(alloc.is_empty(), "fully drained");
        report.check_invariants().unwrap();
    }

    #[test]
    fn replay_is_reproducible_run_to_run() {
        let workload = scenarios::paper_week_f(30).generate(11);
        let a = serve_replay(&workload, &deterministic_service()).unwrap();
        let b = serve_replay(&workload, &deterministic_service()).unwrap();
        assert_eq!(a, b);
    }
}
