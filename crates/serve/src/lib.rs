//! # slackvm-serve
//!
//! An online placement service over the SlackVM deployment models: the
//! offline replay engine's decision logic (`slackvm_sim`), turned into
//! a long-running control plane that owns cluster state and answers
//! placement requests concurrently.
//!
//! The architecture is sharded ownership, not shared locking:
//!
//! - [`shard`]: the PM fleet is partitioned across N shards, each a
//!   single worker thread that owns its [`slackvm_sim::DeploymentModel`]
//!   outright — admission within a shard takes no locks. Workers drain
//!   their bounded admission queue in batches, shed requests whose
//!   deadline passed while queued (oldest first, by FIFO construction),
//!   and fall a rejected placement through to the next shard in the
//!   ring before answering `Rejected`.
//! - [`service`]: the embeddable [`PlacementService`] — routing by
//!   lock-free shard summaries, backpressure on full queues, a placement
//!   directory for remove/resize routing, telemetry (counters, latency
//!   histograms, Prometheus exposition, optional time-series sampling),
//!   and graceful drain-and-report shutdown.
//! - [`wire`] / [`tcp`]: a line-delimited JSON protocol over plain
//!   `std::net` TCP, plus a one-shot HTTP `GET` answer for Prometheus
//!   scrapes — no async runtime, no serialization dependency.
//! - [`bombard`]: a closed- and open-loop load generator replaying
//!   workload-scenario VM shapes as live traffic, reporting throughput
//!   and p50/p99/p999 placement latency.
//! - [`replay`]: deterministic trace replay through the service. With
//!   one shard in deterministic mode the service makes the same
//!   decisions as offline `run_packing`, placement for placement
//!   (proven by the `serve_differential` suite test).
//! - [`obs`]: the always-on observability plane — a dedicated
//!   background HTTP listener (`serve --obs-addr`) serving `/metrics`,
//!   `/healthz` (per-shard heartbeat watchdog), and `/slo` (rolling
//!   error-budget scorecard) off the request path. Request-scoped
//!   tracing ([`TraceLevel`]) mints a trace ID at the door, stamps
//!   every lifecycle stage (door → queue → placement → WAL commit →
//!   reply) into per-stage histograms, and can sample full request
//!   lifecycles as Chrome-trace spans.
//!
//! With [`ServeConfig::durable`](request::ServeConfig::durable) set,
//! every committed decision is journaled to a per-shard write-ahead
//! log and snapshotted periodically (`slackvm_durable`); a restart
//! against the same state directory recovers the fleet, and
//! `slackvm fsck` proves the recovery equals the committed history.
//!
//! The fault-tolerance plane rides on the same machinery: `fail-pm`,
//! `drain-pm`, and `recover-pm` control ops evict a PM's VMs and
//! re-place them through the normal admission path (local first, then
//! ring fall-through with bounded retry), journal every decision, and
//! report any VM that could not be re-placed as lost — by id — in
//! `/healthz` and the final service report. WAL append failures
//! degrade the shard to journal-off instead of panicking unless
//! `durable_fail_stop` asks for the old behavior.
//!
//! With [`ServeConfig::rebalance`](request::ServeConfig::rebalance)
//! set, each shard's worker runs a background consolidation tick
//! between admission batches: it plans a drain of its least-utilized
//! PMs (`slackvm_rebalance`), validates the plan, and executes a
//! throttled slice of it as live migrations — journalled like any
//! admission decision, paused automatically while a PM is failed or
//! draining, the journal is degraded, or the SLO window is burning
//! error budget.
//!
//! With [`ServeConfig::pressure`](request::ServeConfig::pressure) set,
//! the same worker loop also runs a hotspot-mitigation tick
//! (`slackvm_pressure`): per-VM usage samples feed EWMA/percentile
//! estimators, each PM gets an oversubscription-weighted pressure
//! score with hysteresis (hot/warm/cold), and hot PMs are drained onto
//! cold ones through the shared placement pipeline. The two planes are
//! interlocked — a tick runs pressure *or* consolidation, never both,
//! with pressure taking precedence — and pressure pauses on the same
//! conditions consolidation does.

#![warn(missing_docs)]

pub mod bombard;
pub mod error;
pub mod obs;
pub mod replay;
pub mod request;
pub mod service;
pub mod shard;
pub mod tcp;
pub mod wire;

pub use bombard::{
    run_closed_loop, run_open_loop, run_tcp, BombardConfig, BombardReport, StageBreakdown,
};
pub use error::ServeError;
pub use obs::{HealthReport, ObsHandle, ObsServer, ShardHealth};
pub use replay::{serve_replay, Decision, ReplaySummary};
pub use request::{
    ModelSpec, Op, Outcome, PressureOptions, RebalanceOptions, Reply, ServeConfig, TraceLevel,
};
pub use service::{PlacementService, ServiceReport};
pub use shard::{
    PressureSkip, PressureTick, RebalanceSkip, RebalanceTick, ShardReport, ShardSummary,
};
pub use slackvm_durable::{DurableOptions, FsyncPolicy};
pub use slackvm_telemetry::{SloReport, SloTargets};
pub use tcp::{TcpServer, TcpStats};
