//! The line-delimited JSON wire protocol of the TCP frontend.
//!
//! One request per line, one reply line per request. The grammar is a
//! deliberately tiny JSON subset — flat objects, string and unsigned
//! integer fields, no escapes — parsed with hand-rolled field scanners
//! so the frontend carries no serialization dependency.
//!
//! Requests:
//!
//! ```text
//! {"op":"place","id":7,"vcpus":4,"mem_mib":8192,"level":3}
//! {"op":"remove","id":7}
//! {"op":"resize","id":7,"vcpus":8,"mem_mib":16384}
//! {"op":"fail-pm","shard":0,"pm":3}
//! {"op":"recover-pm","shard":0,"pm":3}
//! {"op":"drain-pm","shard":0,"pm":3}
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! (`shard` defaults to 0 on the PM-lifecycle ops; PM ids are
//! shard-local.)
//!
//! Replies mirror the op and id, e.g.
//! `{"ok":true,"op":"place","id":7,"pm":3,"shard":0,"latency_us":12}`;
//! failures carry `"ok":false` and an `"error"` word (`"rejected"`,
//! `"shed"`, `"unknown-vm"`, `"busy"`, `"bad-request"`).

use slackvm_model::{OversubLevel, PmId, VmId, VmSpec};

use crate::error::ServeError;
use crate::request::{Op, Outcome, Reply};

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// A placement-plane operation for the service.
    Op(Op),
    /// Liveness probe.
    Ping,
    /// Service-wide counters snapshot.
    Stats,
    /// Stop accepting connections and shut the service down.
    Shutdown,
}

/// Scans `line` for `"key":<unsigned integer>`.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Scans `line` for `"key":"<string without escapes>"`.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start().strip_prefix('"')?;
    rest.split('"').next()
}

fn require(line: &str, key: &str) -> Result<u64, ServeError> {
    field_u64(line, key)
        .ok_or_else(|| ServeError::BadRequest(format!("missing numeric field {key:?} in {line:?}")))
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<WireRequest, ServeError> {
    let line = line.trim();
    let op = field_str(line, "op")
        .ok_or_else(|| ServeError::BadRequest(format!("missing \"op\" in {line:?}")))?;
    match op {
        "place" => {
            let id = require(line, "id")?;
            let vcpus = require(line, "vcpus")?;
            let mem_mib = require(line, "mem_mib")?;
            let level = field_u64(line, "level").unwrap_or(1);
            if vcpus == 0 || mem_mib == 0 {
                return Err(ServeError::BadRequest(
                    "vcpus and mem_mib must be positive".into(),
                ));
            }
            if !(1..=64).contains(&level) {
                return Err(ServeError::BadRequest(format!(
                    "level {level} outside 1..=64"
                )));
            }
            Ok(WireRequest::Op(Op::Place {
                id: VmId(id),
                spec: VmSpec::of(vcpus as u32, mem_mib, OversubLevel::of(level as u32)),
            }))
        }
        "remove" => Ok(WireRequest::Op(Op::Remove {
            id: VmId(require(line, "id")?),
        })),
        "resize" => {
            let id = require(line, "id")?;
            let vcpus = require(line, "vcpus")?;
            let mem_mib = require(line, "mem_mib")?;
            if vcpus == 0 || mem_mib == 0 {
                return Err(ServeError::BadRequest(
                    "vcpus and mem_mib must be positive".into(),
                ));
            }
            Ok(WireRequest::Op(Op::Resize {
                id: VmId(id),
                vcpus: vcpus as u32,
                mem_mib,
            }))
        }
        "fail-pm" | "recover-pm" | "drain-pm" => {
            let shard = field_u64(line, "shard").unwrap_or(0);
            let pm = require(line, "pm")?;
            if shard > u32::MAX as u64 || pm > u32::MAX as u64 {
                return Err(ServeError::BadRequest(
                    "shard and pm must fit in 32 bits".into(),
                ));
            }
            let (shard, pm) = (shard as u32, PmId(pm as u32));
            Ok(WireRequest::Op(match op {
                "fail-pm" => Op::FailPm { shard, pm },
                "recover-pm" => Op::RecoverPm { shard, pm },
                _ => Op::DrainPm { shard, pm },
            }))
        }
        "ping" => Ok(WireRequest::Ping),
        "stats" => Ok(WireRequest::Stats),
        "shutdown" => Ok(WireRequest::Shutdown),
        other => Err(ServeError::BadRequest(format!(
            "unknown op {other:?} (place, remove, resize, fail-pm, recover-pm, \
             drain-pm, ping, stats, shutdown)"
        ))),
    }
}

fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Place { .. } => "place",
        Op::Remove { .. } => "remove",
        Op::Resize { .. } => "resize",
        Op::FailPm { .. } => "fail-pm",
        Op::RecoverPm { .. } => "recover-pm",
        Op::DrainPm { .. } => "drain-pm",
    }
}

fn shard_suffix(reply: &Reply) -> String {
    let mut out = match reply.shard {
        Some(s) => format!(",\"shard\":{s},\"latency_us\":{}", reply.latency_us),
        None => format!(",\"latency_us\":{}", reply.latency_us),
    };
    if reply.trace != 0 {
        out.push_str(&format!(",\"trace\":{}", reply.trace));
    }
    // Stage timings ride along only when the service recorded them
    // (TraceLevel::Off leaves them zero and off the wire).
    if reply.queue_us != 0 || reply.place_us != 0 || reply.commit_us != 0 {
        out.push_str(&format!(
            ",\"queue_us\":{},\"place_us\":{},\"commit_us\":{}",
            reply.queue_us, reply.place_us, reply.commit_us
        ));
    }
    out
}

/// Renders the reply line for an executed operation.
pub fn render_reply(op: &Op, reply: &Reply) -> String {
    let name = op_name(op);
    let id = op.vm().map(|v| v.0);
    // The machine a PM-lifecycle op addressed, mirrored on its ack.
    let target_pm = match op {
        Op::FailPm { pm, .. } | Op::RecoverPm { pm, .. } | Op::DrainPm { pm, .. } => pm.0,
        _ => 0,
    };
    match reply.outcome {
        Outcome::Placed(pm) => format!(
            "{{\"ok\":true,\"op\":\"{name}\",\"id\":{},\"pm\":{}{}}}",
            id.unwrap_or_default(),
            pm.0,
            shard_suffix(reply)
        ),
        Outcome::Removed(pm) => format!(
            "{{\"ok\":true,\"op\":\"{name}\",\"id\":{},\"pm\":{}{}}}",
            id.unwrap_or_default(),
            pm.0,
            shard_suffix(reply)
        ),
        Outcome::Resized { accepted } => format!(
            "{{\"ok\":true,\"op\":\"{name}\",\"id\":{},\"accepted\":{accepted}{}}}",
            id.unwrap_or_default(),
            shard_suffix(reply)
        ),
        Outcome::Rejected => render_error(name, id, "rejected"),
        Outcome::Shed => render_error(name, id, "shed"),
        Outcome::UnknownVm => render_error(name, id, "unknown-vm"),
        Outcome::PmFailed {
            evicted,
            replaced,
            lost,
        }
        | Outcome::PmDraining {
            evicted,
            replaced,
            lost,
        } => format!(
            "{{\"ok\":true,\"op\":\"{name}\",\"pm\":{target_pm},\"evicted\":{evicted},\
             \"replaced\":{replaced},\"lost\":{lost}{}}}",
            shard_suffix(reply)
        ),
        Outcome::PmRecovered => format!(
            "{{\"ok\":true,\"op\":\"{name}\",\"pm\":{target_pm}{}}}",
            shard_suffix(reply)
        ),
    }
}

/// Renders a failure line.
pub fn render_error(op: &str, id: Option<u64>, error: &str) -> String {
    match id {
        Some(id) => format!("{{\"ok\":false,\"op\":\"{op}\",\"id\":{id},\"error\":\"{error}\"}}"),
        None => format!("{{\"ok\":false,\"op\":\"{op}\",\"error\":\"{error}\"}}"),
    }
}

/// Renders the `ping` reply.
pub fn render_pong() -> String {
    "{\"ok\":true,\"op\":\"ping\"}".to_string()
}

/// Renders the `stats` reply.
pub fn render_stats(admitted: u64, rejected: u64, shed: u64, opened_pms: u64) -> String {
    format!(
        "{{\"ok\":true,\"op\":\"stats\",\"admitted\":{admitted},\"rejected\":{rejected},\
         \"shed\":{shed},\"opened_pms\":{opened_pms}}}"
    )
}

/// Renders the `shutdown` acknowledgement.
pub fn render_shutdown_ack() -> String {
    "{\"ok\":true,\"op\":\"shutdown\"}".to_string()
}

/// Reads `"ok"` / `"op"` / `"pm"` / `"error"` off a reply line — what a
/// client (the bombard driver) needs to classify an answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReply {
    /// The mirrored `"ok"` field.
    pub ok: bool,
    /// The mirrored operation name.
    pub op: Option<String>,
    /// Hosting PM for place/remove acks.
    pub pm: Option<u64>,
    /// Resize verdict on resize acks.
    pub accepted: Option<bool>,
    /// VMs evicted, on fail-pm/drain-pm acks.
    pub evicted: Option<u64>,
    /// VMs re-placed synchronously, on fail-pm/drain-pm acks.
    pub replaced: Option<u64>,
    /// VMs already known lost, on fail-pm/drain-pm acks.
    pub lost: Option<u64>,
    /// The error word on failures.
    pub error: Option<String>,
    /// Worker-observed latency, when present.
    pub latency_us: Option<u64>,
    /// Request-scoped trace ID, when present.
    pub trace: Option<u64>,
    /// Queue-wait stage, microseconds, when the service staged it.
    pub queue_us: Option<u64>,
    /// Placement stage, microseconds, when staged.
    pub place_us: Option<u64>,
    /// WAL-commit stage, microseconds, when staged.
    pub commit_us: Option<u64>,
}

/// Parses a reply line (client side).
pub fn parse_reply(line: &str) -> Result<WireReply, ServeError> {
    let line = line.trim();
    let ok = if line.contains("\"ok\":true") {
        true
    } else if line.contains("\"ok\":false") {
        false
    } else {
        return Err(ServeError::BadRequest(format!(
            "reply without \"ok\" field: {line:?}"
        )));
    };
    let accepted = if line.contains("\"accepted\":true") {
        Some(true)
    } else if line.contains("\"accepted\":false") {
        Some(false)
    } else {
        None
    };
    Ok(WireReply {
        ok,
        op: field_str(line, "op").map(str::to_string),
        pm: field_u64(line, "pm"),
        accepted,
        evicted: field_u64(line, "evicted"),
        replaced: field_u64(line, "replaced"),
        lost: field_u64(line, "lost"),
        error: field_str(line, "error").map(str::to_string),
        latency_us: field_u64(line, "latency_us"),
        trace: field_u64(line, "trace"),
        queue_us: field_u64(line, "queue_us"),
        place_us: field_u64(line, "place_us"),
        commit_us: field_u64(line, "commit_us"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_model::PmId;

    #[test]
    fn place_line_round_trips() {
        let req =
            parse_request("{\"op\":\"place\",\"id\":7,\"vcpus\":4,\"mem_mib\":8192,\"level\":3}")
                .unwrap();
        match req {
            WireRequest::Op(Op::Place { id, spec }) => {
                assert_eq!(id, VmId(7));
                assert_eq!(spec.vcpus(), 4);
                assert_eq!(spec.mem_mib(), 8192);
                assert_eq!(spec.level.ratio(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn level_defaults_to_one() {
        let req =
            parse_request("{\"op\":\"place\",\"id\":1,\"vcpus\":2,\"mem_mib\":1024}").unwrap();
        match req {
            WireRequest::Op(Op::Place { spec, .. }) => assert_eq!(spec.level.ratio(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(
            parse_request("{\"op\":\"ping\"}").unwrap(),
            WireRequest::Ping
        );
        assert_eq!(
            parse_request(" {\"op\":\"stats\"} ").unwrap(),
            WireRequest::Stats
        );
        assert_eq!(
            parse_request("{\"op\":\"shutdown\"}").unwrap(),
            WireRequest::Shutdown
        );
    }

    #[test]
    fn pm_lifecycle_ops_parse_and_acks_round_trip() {
        let req = parse_request("{\"op\":\"fail-pm\",\"shard\":2,\"pm\":5}").unwrap();
        assert_eq!(
            req,
            WireRequest::Op(Op::FailPm {
                shard: 2,
                pm: PmId(5)
            })
        );
        // shard defaults to 0; pm is mandatory.
        let req = parse_request("{\"op\":\"drain-pm\",\"pm\":1}").unwrap();
        assert_eq!(
            req,
            WireRequest::Op(Op::DrainPm {
                shard: 0,
                pm: PmId(1)
            })
        );
        assert!(parse_request("{\"op\":\"recover-pm\"}").is_err());

        let op = Op::FailPm {
            shard: 0,
            pm: PmId(5),
        };
        let line = render_reply(
            &op,
            &Reply {
                seq: 0,
                shard: Some(0),
                outcome: Outcome::PmFailed {
                    evicted: 4,
                    replaced: 3,
                    lost: 1,
                },
                latency_us: 7,
                trace: 0,
                queue_us: 0,
                place_us: 0,
                commit_us: 0,
            },
        );
        let parsed = parse_reply(&line).unwrap();
        assert!(parsed.ok);
        assert_eq!(parsed.op.as_deref(), Some("fail-pm"));
        assert_eq!(parsed.pm, Some(5));
        assert_eq!(
            (parsed.evicted, parsed.replaced, parsed.lost),
            (Some(4), Some(3), Some(1))
        );
    }

    #[test]
    fn bad_lines_name_the_defect() {
        for (line, needle) in [
            ("{\"op\":\"warp\"}", "unknown op"),
            ("{\"id\":3}", "missing \"op\""),
            ("{\"op\":\"place\",\"id\":3}", "vcpus"),
            (
                "{\"op\":\"place\",\"id\":3,\"vcpus\":0,\"mem_mib\":4}",
                "positive",
            ),
            (
                "{\"op\":\"place\",\"id\":3,\"vcpus\":1,\"mem_mib\":4,\"level\":99}",
                "1..=64",
            ),
        ] {
            let err = parse_request(line).unwrap_err().to_string();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn replies_render_and_parse_back() {
        let op = Op::Place {
            id: VmId(7),
            spec: VmSpec::of(4, 8192, OversubLevel::of(3)),
        };
        let line = render_reply(
            &op,
            &Reply {
                seq: 0,
                shard: Some(2),
                outcome: Outcome::Placed(PmId(3)),
                latency_us: 12,
                trace: 0,
                queue_us: 0,
                place_us: 0,
                commit_us: 0,
            },
        );
        assert_eq!(
            line,
            "{\"ok\":true,\"op\":\"place\",\"id\":7,\"pm\":3,\"shard\":2,\"latency_us\":12}"
        );
        let parsed = parse_reply(&line).unwrap();
        assert!(parsed.ok);
        assert_eq!(parsed.op.as_deref(), Some("place"));
        assert_eq!(parsed.pm, Some(3));
        assert_eq!(parsed.latency_us, Some(12));
        assert_eq!(parsed.trace, None, "untraced replies stay terse");

        let shed = render_reply(
            &op,
            &Reply {
                seq: 0,
                shard: Some(0),
                outcome: Outcome::Shed,
                latency_us: 99,
                trace: 0,
                queue_us: 0,
                place_us: 0,
                commit_us: 0,
            },
        );
        let parsed = parse_reply(&shed).unwrap();
        assert!(!parsed.ok);
        assert_eq!(parsed.error.as_deref(), Some("shed"));
    }

    #[test]
    fn traced_replies_carry_stage_fields() {
        let op = Op::Place {
            id: VmId(7),
            spec: VmSpec::of(4, 8192, OversubLevel::of(3)),
        };
        let line = render_reply(
            &op,
            &Reply {
                seq: 8,
                shard: Some(1),
                outcome: Outcome::Placed(PmId(0)),
                latency_us: 40,
                trace: 0x1234_5678_9abc,
                queue_us: 41,
                place_us: 9,
                commit_us: 130,
            },
        );
        let parsed = parse_reply(&line).unwrap();
        assert_eq!(parsed.trace, Some(0x1234_5678_9abc));
        assert_eq!(parsed.queue_us, Some(41));
        assert_eq!(parsed.place_us, Some(9));
        assert_eq!(parsed.commit_us, Some(130));
    }
}
