//! Shard workers: single-threaded owners of a fleet partition.
//!
//! Each shard owns one [`DeploymentModel`] outright — admission within a
//! shard is lock-free because exactly one thread ever touches the model.
//! Coordination happens at the edges: a bounded MPSC admission queue in
//! front of each worker, lock-striped shared metrics flushed once per
//! batch, and atomic [`ShardSummary`] scoreboards the router reads
//! without locking.
//!
//! Shutdown is an explicit [`Msg::Stop`] message rather than
//! sender-drop: workers hold clones of *every* shard's sender (for
//! rejection fall-through), so a drop-based protocol would deadlock —
//! each worker would wait for the others to drop first.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use slackvm_durable::{CommitStamp, ShardDurable, WalOp, WalOutcome};
use slackvm_model::{AllocView, VmId};
use slackvm_sim::{DeploymentModel, SimError};
use slackvm_telemetry::{MetricsRegistry, SloTracker, SlowOpsDigest, TraceBuilder, TraceSpan};

use crate::request::{Op, Outcome, Reply, TraceLevel};

/// Microseconds elapsed since the service's trace epoch.
pub(crate) fn us_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_micros() as u64
}

/// Milliseconds elapsed since the service's trace epoch.
pub(crate) fn ms_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_millis() as u64
}

/// One queued request, carrying its reply channel.
pub(crate) struct Request {
    pub seq: u64,
    pub op: Op,
    /// Shed when still queued past this instant (`None`: never shed).
    pub deadline: Option<Instant>,
    /// Door-accept instant — when the request crossed the service
    /// boundary (TCP read complete / `submit` entered), before routing.
    pub door: Instant,
    /// Submission instant, for end-to-end latency accounting.
    pub enqueued: Instant,
    /// Request-scoped trace ID, minted at the door.
    pub trace: u64,
    /// Shards that already rejected this request (fall-through hops).
    pub tried: u32,
    pub reply: Sender<Reply>,
}

/// The admission-queue message.
pub(crate) enum Msg {
    Req(Request),
    /// Process what is queued, then exit — see the module docs for why
    /// shutdown is a message and not a disconnect.
    Stop,
    /// Test hook: sleep this long mid-loop, wedging the worker so the
    /// `/healthz` watchdog's stall detection can be exercised without
    /// a pathological model.
    #[allow(dead_code)]
    Stall(Duration),
}

/// A shard's lock-free scoreboard: queue depth and coarse utilization,
/// refreshed by the owning worker once per batch and read by the router
/// and the sampler without synchronization.
#[derive(Debug, Default)]
pub struct ShardSummary {
    queued: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    opened_pms: AtomicU64,
    used_cpu_mc: AtomicU64,
    cap_cpu_mc: AtomicU64,
    /// Worker liveness heartbeat: milliseconds since the service epoch
    /// at the worker's last loop turn (idle timeouts count — an idle
    /// worker is alive, a wedged one is not).
    last_beat_ms: AtomicU64,
}

impl ShardSummary {
    /// Requests currently queued (approximate under concurrency).
    pub fn queued(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Placements admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Placements rejected so far (after fall-through).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests shed past their deadline.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// PMs opened on this shard's partition.
    pub fn opened_pms(&self) -> u64 {
        self.opened_pms.load(Ordering::Relaxed)
    }

    /// Allocated CPU, millicores.
    pub fn used_cpu_millicores(&self) -> u64 {
        self.used_cpu_mc.load(Ordering::Relaxed)
    }

    /// Capacity over opened PMs, millicores.
    pub fn capacity_cpu_millicores(&self) -> u64 {
        self.cap_cpu_mc.load(Ordering::Relaxed)
    }

    pub(crate) fn note_enqueued(&self) {
        self.queued.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_dequeued(&self) {
        // Saturating: a racing reader must never observe a wrap-around.
        let _ = self
            .queued
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |q| {
                Some(q.saturating_sub(1))
            });
    }

    fn add_counts(&self, admitted: u64, rejected: u64, shed: u64) {
        self.admitted.fetch_add(admitted, Ordering::Relaxed);
        self.rejected.fetch_add(rejected, Ordering::Relaxed);
        self.shed.fetch_add(shed, Ordering::Relaxed);
    }

    pub(crate) fn heartbeat(&self, t_ms: u64) {
        self.last_beat_ms.store(t_ms, Ordering::Relaxed);
    }

    /// Milliseconds-since-epoch of the worker's last heartbeat.
    pub fn last_beat_ms(&self) -> u64 {
        self.last_beat_ms.load(Ordering::Relaxed)
    }

    pub(crate) fn refresh(&self, opened: u64, alloc: AllocView, cap: AllocView) {
        self.opened_pms.store(opened, Ordering::Relaxed);
        self.used_cpu_mc.store(alloc.cpu.0, Ordering::Relaxed);
        self.cap_cpu_mc.store(cap.cpu.0, Ordering::Relaxed);
    }
}

/// What a worker hands back when the service stops.
pub struct ShardReport {
    /// Shard index.
    pub shard: u32,
    /// The final deployment state, for invariant audits and totals.
    pub model: DeploymentModel,
    /// Placements admitted by this shard.
    pub admitted: u64,
    /// Placements this shard answered `Rejected` for.
    pub rejected: u64,
    /// Requests this shard shed.
    pub shed: u64,
    /// Slowest sampled request lifecycles seen by this shard (empty
    /// unless the service ran with [`TraceLevel::Sampled`]).
    pub slow: SlowOpsDigest,
}

/// Per-shard gauge names, leaked once per service start so the
/// `&'static str`-keyed registry can carry them.
pub(crate) struct ShardGauges {
    pub opened: &'static str,
    pub cpu_used_cores: &'static str,
    pub queue_depth: &'static str,
}

impl ShardGauges {
    pub(crate) fn for_shard(idx: u32) -> Self {
        let leak = |s: String| -> &'static str { Box::leak(s.into_boxed_str()) };
        ShardGauges {
            opened: leak(format!("serve.shard{idx}.opened_pms")),
            cpu_used_cores: leak(format!("serve.shard{idx}.cpu_used_cores")),
            queue_depth: leak(format!("serve.shard{idx}.queue_depth")),
        }
    }
}

pub(crate) struct Worker {
    pub idx: u32,
    pub rx: std::sync::mpsc::Receiver<Msg>,
    /// Senders to every shard (self included), for fall-through.
    pub peers: Vec<SyncSender<Msg>>,
    pub model: DeploymentModel,
    pub summaries: Arc<Vec<ShardSummary>>,
    pub directory: Arc<Mutex<HashMap<VmId, u32>>>,
    pub metrics: Arc<Mutex<MetricsRegistry>>,
    pub gauges: ShardGauges,
    pub batch_max: usize,
    /// Deterministic mode never sheds.
    pub deterministic: bool,
    /// Write-ahead journal of this shard's decisions, when the service
    /// runs durable. Appends happen as decisions are made; the batch is
    /// committed (fsync per policy) *before* any reply is released.
    pub durable: Option<ShardDurable>,
    /// The service's trace epoch: all stage timestamps and heartbeats
    /// are offsets from this instant.
    pub epoch: Instant,
    /// How much per-request timing to record.
    pub level: TraceLevel,
    /// Shared span sink for sampled request lifecycles (present only
    /// under [`TraceLevel::Sampled`]).
    pub sink: Option<Arc<Mutex<TraceBuilder>>>,
    /// Rolling SLO window, fed once per batch.
    pub slo: Arc<Mutex<SloTracker>>,
    /// Per-shard top-K slowest sampled requests.
    pub slow: SlowOpsDigest,
    /// Idle-wait bound of the loop: waking this often stamps the
    /// liveness heartbeat even with no traffic.
    pub heartbeat_every: Duration,
}

/// Per-batch counter deltas, flushed under one metrics lock, plus the
/// replies to release once the flush lands.
#[derive(Default)]
struct BatchStats {
    requests: u64,
    admitted: u64,
    rejected: u64,
    shed: u64,
    removed: u64,
    resized: u64,
    unknown: u64,
    forwarded: u64,
    latencies_us: Vec<u64>,
    /// Queue-wait stage durations (enqueue → dequeue), when staged.
    queue_waits_us: Vec<u64>,
    /// Placement stage durations (dequeue → decision), when staged.
    places_us: Vec<u64>,
    /// Latencies of requests shed this batch (SLO "bad" events).
    shed_latencies_us: Vec<u64>,
    /// Sampled full lifecycles, emitted as spans after the commit.
    sampled: Vec<SampledLifecycle>,
    replies: Vec<(Sender<Reply>, Reply)>,
    /// Decisions to journal, in execution order (empty when the
    /// service is not durable).
    wal: Vec<(WalOp, WalOutcome)>,
    /// Journal bytes appended while executing the batch.
    wal_bytes: u64,
}

/// Epoch-relative stage timestamps of one sampled request, captured
/// while the batch executes and folded into Chrome-trace spans (one
/// track per trace ID) once the batch's commit lands.
struct SampledLifecycle {
    trace: u64,
    door_us: u64,
    enq_us: u64,
    deq_us: u64,
    dec_us: u64,
}

impl Worker {
    /// The worker loop: block for one message, drain up to `batch_max`,
    /// execute, flush. Returns the final state on [`Msg::Stop`] (after
    /// draining whatever is still queued).
    pub(crate) fn run(mut self) -> ShardReport {
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        let mut shed = 0u64;
        let mut draining = false;
        self.beat();
        loop {
            let first = if draining {
                match self.rx.try_recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            } else {
                match self.rx.recv_timeout(self.heartbeat_every) {
                    Ok(m) => m,
                    // An idle worker is a live worker: the timeout wake
                    // exists solely to stamp the liveness heartbeat so
                    // the `/healthz` watchdog can tell idle from wedged.
                    Err(RecvTimeoutError::Timeout) => {
                        self.beat();
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            };
            let mut batch: Vec<Request> = Vec::with_capacity(self.batch_max);
            let mut msg = first;
            loop {
                match msg {
                    Msg::Stop => draining = true,
                    Msg::Req(r) => batch.push(r),
                    // Wedge simulation: sleep without heartbeating, as a
                    // worker stuck in a pathological placement would.
                    Msg::Stall(d) => std::thread::sleep(d),
                }
                if batch.len() >= self.batch_max {
                    break;
                }
                match self.rx.try_recv() {
                    Ok(m) => msg = m,
                    Err(_) => break,
                }
            }
            if !batch.is_empty() {
                let mut stats = self.process(batch);
                admitted += stats.admitted;
                rejected += stats.rejected;
                shed += stats.shed;
                // Durability point: the batch's journal frames reach
                // stable storage (per the fsync policy) before anything
                // downstream — metrics, replies — can reveal the
                // decisions. A failure here panics the worker rather
                // than acknowledge an unpersisted decision.
                let commit = self
                    .durable
                    .as_mut()
                    .map(|d| d.commit().expect("wal commit failed"));
                let commit_us = commit
                    .map(|c| c.wall.as_micros() as u64)
                    .unwrap_or_default();
                if self.level.stages() && commit_us > 0 {
                    // The commit gated every reply in the batch equally:
                    // its wall time is each request's wal_commit stage.
                    for (_, reply) in stats.replies.iter_mut() {
                        reply.commit_us = commit_us;
                    }
                }
                self.emit_sampled(&stats, commit_us);
                self.summaries[self.idx as usize].add_counts(
                    stats.admitted,
                    stats.rejected,
                    stats.shed,
                );
                self.flush(&stats, commit);
                // Replies go out only after the metrics flush: a client
                // that has its reply in hand can scrape the exposition
                // and find its own request already counted.
                for (tx, reply) in stats.replies {
                    let _ = tx.send(reply);
                }
                // Snapshot cadence runs after replies: it bounds future
                // recovery time and should not sit in any request's
                // latency path beyond the batch that crossed it.
                if let Some(d) = self.durable.as_mut() {
                    if d.maybe_snapshot(&self.model).expect("snapshot failed") {
                        self.metrics
                            .lock()
                            .expect("metrics lock")
                            .inc("durable.snapshots", 1);
                    }
                }
            }
            self.beat();
        }
        // Drain-to-snapshot: a clean shutdown leaves the freshest
        // possible checkpoint so the next start replays no tail.
        if let Some(d) = self.durable.as_mut() {
            d.snapshot_now(&self.model).expect("final snapshot failed");
        }
        ShardReport {
            shard: self.idx,
            model: self.model,
            admitted,
            rejected,
            shed,
            slow: self.slow,
        }
    }

    /// Stamps the liveness heartbeat the `/healthz` watchdog reads.
    fn beat(&self) {
        self.summaries[self.idx as usize].heartbeat(ms_since(self.epoch));
    }

    /// Folds the batch's sampled lifecycles into the shared span sink
    /// (one Chrome-trace track per trace ID) and the shard's slow-
    /// request digest. The parent `serve.request` span stretches from
    /// door accept through the WAL commit that gated the reply.
    fn emit_sampled(&mut self, stats: &BatchStats, commit_us: u64) {
        let Some(sink) = &self.sink else { return };
        if stats.sampled.is_empty() {
            return;
        }
        let mut sink = sink.lock().expect("trace sink lock");
        for s in &stats.sampled {
            let end_us = s.dec_us + commit_us;
            let parent = TraceSpan {
                name: "serve.request",
                start_us: s.door_us,
                dur_us: end_us.saturating_sub(s.door_us),
            };
            sink.push_on(s.trace, parent);
            sink.push_on(
                s.trace,
                TraceSpan {
                    name: "serve.door",
                    start_us: s.door_us,
                    dur_us: s.enq_us.saturating_sub(s.door_us),
                },
            );
            sink.push_on(
                s.trace,
                TraceSpan {
                    name: "serve.queue_wait",
                    start_us: s.enq_us,
                    dur_us: s.deq_us.saturating_sub(s.enq_us),
                },
            );
            sink.push_on(
                s.trace,
                TraceSpan {
                    name: "serve.placement",
                    start_us: s.deq_us,
                    dur_us: s.dec_us.saturating_sub(s.deq_us),
                },
            );
            sink.push_on(
                s.trace,
                TraceSpan {
                    name: "serve.wal_commit",
                    start_us: s.dec_us,
                    dur_us: commit_us,
                },
            );
            self.slow.offer(parent);
        }
    }

    fn process(&mut self, batch: Vec<Request>) -> BatchStats {
        // One clock read amortized over the whole batch: deadlines are
        // checked and latencies stamped against the same instant.
        let now = Instant::now();
        let mut stats = BatchStats {
            latencies_us: Vec::with_capacity(batch.len()),
            ..BatchStats::default()
        };
        // Which decisions get journaled: state changes plus terminal
        // `Rejected` placements (themselves deterministic decisions
        // `slackvm fsck` re-derives). Shed and unknown-VM outcomes
        // never touched the model and are not logged.
        let journal = self.durable.is_some();
        let staged = self.level.stages();
        let summary = &self.summaries[self.idx as usize];
        for req in batch {
            summary.note_dequeued();
            stats.requests += 1;
            let latency_us = now.saturating_duration_since(req.enqueued).as_micros() as u64;
            // FIFO queues mean the oldest requests surface first, so
            // shedding on dequeue is shed-oldest-first by construction.
            if !self.deterministic {
                if let Some(deadline) = req.deadline {
                    if now > deadline {
                        stats.shed += 1;
                        stats.shed_latencies_us.push(latency_us);
                        self.answer(&mut stats, &req, Outcome::Shed, latency_us, None);
                        continue;
                    }
                }
            }
            stats.latencies_us.push(latency_us);
            // Stage stamp #1 of 2: the queue-wait hop ends here. The
            // second lands in `answer`, once the decision exists.
            let dequeued = if staged { Some(Instant::now()) } else { None };
            match req.op {
                Op::Place { id, spec } => match self.model.deploy(id, spec) {
                    Ok(pm) => {
                        stats.admitted += 1;
                        if journal {
                            stats
                                .wal
                                .push((WalOp::Place { id, spec }, WalOutcome::Placed(pm)));
                        }
                        self.directory
                            .lock()
                            .expect("directory lock")
                            .insert(id, self.idx);
                        self.answer(&mut stats, &req, Outcome::Placed(pm), latency_us, dequeued);
                    }
                    Err(SimError::DeploymentFailed(_)) => {
                        if !self.forward(req, &mut stats, dequeued) {
                            stats.rejected += 1;
                            if journal {
                                stats
                                    .wal
                                    .push((WalOp::Place { id, spec }, WalOutcome::Rejected));
                            }
                        }
                    }
                    Err(SimError::Unsatisfiable(_)) => {
                        // Exceeds an empty host: no shard can ever take
                        // it, don't waste fall-through hops.
                        stats.rejected += 1;
                        if journal {
                            stats
                                .wal
                                .push((WalOp::Place { id, spec }, WalOutcome::Rejected));
                        }
                        self.answer(&mut stats, &req, Outcome::Rejected, latency_us, dequeued);
                    }
                    Err(SimError::UnknownVm(_)) => unreachable!("deploy never reports UnknownVm"),
                },
                Op::Remove { id } => match self.model.remove(id) {
                    Ok(pm) => {
                        stats.removed += 1;
                        if journal {
                            stats
                                .wal
                                .push((WalOp::Remove { id }, WalOutcome::Removed(pm)));
                        }
                        self.directory.lock().expect("directory lock").remove(&id);
                        self.answer(&mut stats, &req, Outcome::Removed(pm), latency_us, dequeued);
                    }
                    Err(_) => {
                        stats.unknown += 1;
                        self.answer(&mut stats, &req, Outcome::UnknownVm, latency_us, dequeued);
                    }
                },
                Op::Resize { id, vcpus, mem_mib } => match self.model.resize(id, vcpus, mem_mib) {
                    Ok(()) => {
                        stats.resized += 1;
                        if journal {
                            stats.wal.push((
                                WalOp::Resize { id, vcpus, mem_mib },
                                WalOutcome::Resized { accepted: true },
                            ));
                        }
                        self.answer(
                            &mut stats,
                            &req,
                            Outcome::Resized { accepted: true },
                            latency_us,
                            dequeued,
                        );
                    }
                    Err(SimError::UnknownVm(_)) => {
                        stats.unknown += 1;
                        self.answer(&mut stats, &req, Outcome::UnknownVm, latency_us, dequeued);
                    }
                    Err(_) => {
                        stats.resized += 1;
                        if journal {
                            stats.wal.push((
                                WalOp::Resize { id, vcpus, mem_mib },
                                WalOutcome::Resized { accepted: false },
                            ));
                        }
                        self.answer(
                            &mut stats,
                            &req,
                            Outcome::Resized { accepted: false },
                            latency_us,
                            dequeued,
                        );
                    }
                },
            }
        }
        let (alloc, cap) = self.model.totals();
        summary.refresh(self.model.opened_pms() as u64, alloc, cap);
        if let Some(d) = self.durable.as_mut() {
            for (op, outcome) in stats.wal.drain(..) {
                stats.wal_bytes += d.append(op, outcome).expect("wal append failed");
            }
        }
        stats
    }

    /// Rejection fall-through: hand the request to the next shard in
    /// the ring. `try_send`, never `send` — a worker blocking on a
    /// full peer queue while that peer blocks back is a deadlock.
    /// Returns false when the request was answered `Rejected` here.
    fn forward(&self, mut req: Request, stats: &mut BatchStats, dequeued: Option<Instant>) -> bool {
        let shards = self.peers.len() as u32;
        if req.tried + 1 >= shards {
            let latency_us = Instant::now()
                .saturating_duration_since(req.enqueued)
                .as_micros() as u64;
            self.answer(stats, &req, Outcome::Rejected, latency_us, dequeued);
            return false;
        }
        req.tried += 1;
        let next = ((self.idx + 1) % shards) as usize;
        self.summaries[next].note_enqueued();
        match self.peers[next].try_send(Msg::Req(req)) {
            Ok(()) => {
                stats.forwarded += 1;
                true
            }
            Err(TrySendError::Full(Msg::Req(r)) | TrySendError::Disconnected(Msg::Req(r))) => {
                self.summaries[next].note_dequeued();
                let latency_us = Instant::now()
                    .saturating_duration_since(r.enqueued)
                    .as_micros() as u64;
                self.answer(stats, &r, Outcome::Rejected, latency_us, dequeued);
                false
            }
            Err(_) => unreachable!("only Req messages are forwarded"),
        }
    }

    /// Queues the reply for release after the batch's metrics flush.
    /// (A gone receiver at send time — caller stopped waiting — is not
    /// an error.) `dequeued` is the request's stage stamp #1; stamp #2
    /// (the decision instant) is read here, closing the placement hop.
    fn answer(
        &self,
        stats: &mut BatchStats,
        req: &Request,
        outcome: Outcome,
        latency_us: u64,
        dequeued: Option<Instant>,
    ) {
        let (queue_us, place_us) = match dequeued {
            Some(deq) => {
                let decided = Instant::now();
                let queue_us = deq.saturating_duration_since(req.enqueued).as_micros() as u64;
                let place_us = decided.saturating_duration_since(deq).as_micros() as u64;
                stats.queue_waits_us.push(queue_us);
                stats.places_us.push(place_us);
                if let Some(every) = self.level.sample_every() {
                    if req.seq % every == 0 {
                        stats.sampled.push(SampledLifecycle {
                            trace: req.trace,
                            door_us: req.door.saturating_duration_since(self.epoch).as_micros()
                                as u64,
                            enq_us: req.enqueued.saturating_duration_since(self.epoch).as_micros()
                                as u64,
                            deq_us: deq.saturating_duration_since(self.epoch).as_micros() as u64,
                            dec_us: decided.saturating_duration_since(self.epoch).as_micros()
                                as u64,
                        });
                    }
                }
                (queue_us, place_us)
            }
            None => (0, 0),
        };
        stats.replies.push((
            req.reply.clone(),
            Reply {
                seq: req.seq,
                shard: Some(self.idx),
                outcome,
                latency_us,
                trace: req.trace,
                queue_us,
                place_us,
                commit_us: 0,
            },
        ));
    }

    fn flush(&self, stats: &BatchStats, commit: Option<CommitStamp>) {
        let summary = &self.summaries[self.idx as usize];
        let mut m = self.metrics.lock().expect("metrics lock");
        m.inc("serve.requests", stats.requests);
        if stats.wal_bytes > 0 {
            m.inc("durable.wal_bytes", stats.wal_bytes);
        }
        if let Some(stamp) = commit {
            if let Some(took) = stamp.fsync {
                m.inc("durable.fsyncs", 1);
                m.observe("durable.fsync", took.as_micros() as f64);
            }
            if self.level.stages() {
                m.observe("serve.wal_commit_us", stamp.wall.as_micros() as f64);
            }
        }
        for us in &stats.queue_waits_us {
            m.observe("serve.queue_wait_us", *us as f64);
        }
        for us in &stats.places_us {
            m.observe("serve.placement_us", *us as f64);
        }
        m.inc("serve.admitted", stats.admitted);
        m.inc("serve.rejected", stats.rejected);
        m.inc("serve.shed", stats.shed);
        m.inc("serve.removed", stats.removed);
        m.inc("serve.resized", stats.resized);
        m.inc("serve.unknown_vm", stats.unknown);
        m.inc("serve.forwarded", stats.forwarded);
        m.observe("serve.batch", stats.requests as f64);
        for us in &stats.latencies_us {
            m.observe("serve.admit", *us as f64);
        }
        m.set_gauge(self.gauges.opened, summary.opened_pms() as f64);
        m.set_gauge(
            self.gauges.cpu_used_cores,
            slackvm_model::Millicores(summary.used_cpu_millicores()).as_cores_f64(),
        );
        m.set_gauge(self.gauges.queue_depth, summary.queued() as f64);
        drop(m);
        // One SLO-window update per batch: executed requests are good
        // events scored on latency, shed requests are bad events.
        let t_ms = ms_since(self.epoch);
        let mut slo = self.slo.lock().expect("slo lock");
        for us in &stats.latencies_us {
            slo.record(t_ms, *us, true);
        }
        for us in &stats.shed_latencies_us {
            slo.record(t_ms, *us, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_queue_depth_never_underflows() {
        let s = ShardSummary::default();
        s.note_dequeued();
        assert_eq!(s.queued(), 0);
        s.note_enqueued();
        s.note_enqueued();
        s.note_dequeued();
        assert_eq!(s.queued(), 1);
    }

    #[test]
    fn shard_gauges_are_distinct_per_shard() {
        let a = ShardGauges::for_shard(0);
        let b = ShardGauges::for_shard(1);
        assert_ne!(a.opened, b.opened);
        assert!(a.opened.contains("shard0"));
        assert!(b.queue_depth.contains("shard1"));
    }
}
