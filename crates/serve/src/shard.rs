//! Shard workers: single-threaded owners of a fleet partition.
//!
//! Each shard owns one [`DeploymentModel`] outright — admission within a
//! shard is lock-free because exactly one thread ever touches the model.
//! Coordination happens at the edges: a bounded MPSC admission queue in
//! front of each worker, lock-striped shared metrics flushed once per
//! batch, and atomic [`ShardSummary`] scoreboards the router reads
//! without locking.
//!
//! Shutdown is an explicit [`Msg::Stop`] message rather than
//! sender-drop: workers hold clones of *every* shard's sender (for
//! rejection fall-through), so a drop-based protocol would deadlock —
//! each worker would wait for the others to drop first.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use slackvm_durable::{CommitStamp, DurableError, ShardDurable, WalOp, WalOutcome};
use slackvm_model::{AllocView, PmId, VmId};
use slackvm_sim::{DeploymentModel, SimError};
use slackvm_telemetry::{MetricsRegistry, SloTracker, SlowOpsDigest, TraceBuilder, TraceSpan};

use crate::request::{Op, Outcome, PressureOptions, RebalanceOptions, Reply, TraceLevel};

/// Microseconds elapsed since the service's trace epoch.
pub(crate) fn us_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_micros() as u64
}

/// Milliseconds elapsed since the service's trace epoch.
pub(crate) fn ms_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_millis() as u64
}

/// One queued request, carrying its reply channel.
pub(crate) struct Request {
    pub seq: u64,
    pub op: Op,
    /// Shed when still queued past this instant (`None`: never shed).
    pub deadline: Option<Instant>,
    /// Door-accept instant — when the request crossed the service
    /// boundary (TCP read complete / `submit` entered), before routing.
    pub door: Instant,
    /// Submission instant, for end-to-end latency accounting.
    pub enqueued: Instant,
    /// Request-scoped trace ID, minted at the door.
    pub trace: u64,
    /// Shards that already rejected this request (fall-through hops).
    pub tried: u32,
    /// `Some(origin shard)` for an evacuation re-placement minted by a
    /// `FailPm`/`DrainPm`: no client is waiting on the reply channel,
    /// the deadline is `None` (evacuations are never shed), and the
    /// terminal outcome is tallied against the origin's evacuation
    /// scoreboard (and the lost-VM ledger) instead of a caller.
    pub evac: Option<u32>,
    pub reply: Sender<Reply>,
}

/// The admission-queue message.
pub(crate) enum Msg {
    Req(Request),
    /// Process what is queued, then exit — see the module docs for why
    /// shutdown is a message and not a disconnect.
    Stop,
    /// Test hook: sleep this long mid-loop, wedging the worker so the
    /// `/healthz` watchdog's stall detection can be exercised without
    /// a pathological model.
    #[allow(dead_code)]
    Stall(Duration),
    /// Test hook: simulate a journal write failure, so journal-degraded
    /// mode can be exercised without an actual disk fault.
    #[allow(dead_code)]
    DegradeJournal,
    /// Run one rebalance tick right now, bypassing the interval (the
    /// safety interlocks still apply), and report what it did. Runs
    /// inline at message-drain time: requests already drained into the
    /// current batch execute after the tick.
    Rebalance(Sender<RebalanceTick>),
    /// Run one pressure (hotspot-mitigation) tick right now, bypassing
    /// the interval; the same safety interlocks apply.
    Pressure(Sender<PressureTick>),
}

/// Why a rebalance tick declined to plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceSkip {
    /// The worker was started without rebalancing configured.
    Disabled,
    /// A PM on the shard is draining for maintenance.
    Draining,
    /// A PM on the shard is failed and not yet recovered.
    FailedPms,
    /// The shard serves without durability after a journal failure.
    JournalDegraded,
    /// The SLO tracker reports error-budget burn or a latency miss.
    SloBurn,
}

/// What one online rebalance tick did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebalanceTick {
    /// `Some` when the tick declined to plan (and why); `None` when a
    /// planning pass ran, even one that found nothing to move.
    pub skipped: Option<RebalanceSkip>,
    /// Migrations executed this tick.
    pub migrations: u32,
    /// PMs drained to empty this tick.
    pub pms_freed: u32,
    /// Moves the plan wanted beyond this tick's concurrency throttle —
    /// the next tick re-plans and picks them up.
    pub deferred: u32,
}

/// Why a pressure tick declined to plan. Same pauses as
/// [`RebalanceSkip`]: mitigation is background work and yields to
/// anything more important the shard is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PressureSkip {
    /// The worker was started without the pressure plane configured.
    Disabled,
    /// A PM on the shard is draining for maintenance.
    Draining,
    /// A PM on the shard is failed and not yet recovered.
    FailedPms,
    /// The shard serves without durability after a journal failure.
    JournalDegraded,
    /// The SLO tracker reports error-budget burn or a latency miss.
    SloBurn,
}

/// What one online pressure tick did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PressureTick {
    /// `Some` when the tick declined to plan (and why); `None` when a
    /// scoring pass ran, even one that found no hot PM.
    pub skipped: Option<PressureSkip>,
    /// Hot PMs observed at the start of the tick.
    pub hot_pms: u32,
    /// Spread-out migrations executed this tick.
    pub migrations: u32,
    /// Moves the plan wanted beyond this tick's concurrency throttle —
    /// the next tick re-scores and picks them up.
    pub deferred: u32,
}

/// A shard's lock-free scoreboard: queue depth and coarse utilization,
/// refreshed by the owning worker once per batch and read by the router
/// and the sampler without synchronization.
#[derive(Debug, Default)]
pub struct ShardSummary {
    queued: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    opened_pms: AtomicU64,
    used_cpu_mc: AtomicU64,
    cap_cpu_mc: AtomicU64,
    /// Worker liveness heartbeat: milliseconds since the service epoch
    /// at the worker's last loop turn (idle timeouts count — an idle
    /// worker is alive, a wedged one is not).
    last_beat_ms: AtomicU64,
    /// PMs on this shard currently failed (crashed, not yet recovered).
    failed_pms: AtomicU64,
    /// PMs on this shard currently draining for maintenance.
    draining_pms: AtomicU64,
    /// Displaced VMs this shard has forwarded into the ring whose
    /// evacuation has not resolved (placed or lost) yet — nonzero means
    /// an evacuation is still in progress.
    evac_pending: AtomicU64,
    /// Set once the worker's journal has failed and the shard serves
    /// without durability; `/healthz` names the shard.
    journal_degraded: AtomicBool,
    /// Migrations the online rebalancer has executed on this shard.
    rebalance_migrations: AtomicU64,
    /// PMs the online rebalancer has drained to empty on this shard.
    rebalance_pms_freed: AtomicU64,
    /// Spread-out migrations the pressure plane has executed.
    pressure_migrations: AtomicU64,
    /// Hot PMs observed by the most recent pressure tick.
    pressure_hot_pms: AtomicU64,
}

impl ShardSummary {
    /// Requests currently queued (approximate under concurrency).
    pub fn queued(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Placements admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Placements rejected so far (after fall-through).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests shed past their deadline.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// PMs opened on this shard's partition.
    pub fn opened_pms(&self) -> u64 {
        self.opened_pms.load(Ordering::Relaxed)
    }

    /// Allocated CPU, millicores.
    pub fn used_cpu_millicores(&self) -> u64 {
        self.used_cpu_mc.load(Ordering::Relaxed)
    }

    /// Capacity over opened PMs, millicores.
    pub fn capacity_cpu_millicores(&self) -> u64 {
        self.cap_cpu_mc.load(Ordering::Relaxed)
    }

    pub(crate) fn note_enqueued(&self) {
        self.queued.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_dequeued(&self) {
        // Saturating: a racing reader must never observe a wrap-around.
        let _ = self
            .queued
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |q| {
                Some(q.saturating_sub(1))
            });
    }

    fn add_counts(&self, admitted: u64, rejected: u64, shed: u64) {
        self.admitted.fetch_add(admitted, Ordering::Relaxed);
        self.rejected.fetch_add(rejected, Ordering::Relaxed);
        self.shed.fetch_add(shed, Ordering::Relaxed);
    }

    pub(crate) fn heartbeat(&self, t_ms: u64) {
        self.last_beat_ms.store(t_ms, Ordering::Relaxed);
    }

    /// Milliseconds-since-epoch of the worker's last heartbeat.
    pub fn last_beat_ms(&self) -> u64 {
        self.last_beat_ms.load(Ordering::Relaxed)
    }

    pub(crate) fn refresh(&self, opened: u64, alloc: AllocView, cap: AllocView) {
        self.opened_pms.store(opened, Ordering::Relaxed);
        self.used_cpu_mc.store(alloc.cpu.0, Ordering::Relaxed);
        self.cap_cpu_mc.store(cap.cpu.0, Ordering::Relaxed);
    }

    /// PMs currently failed on this shard.
    pub fn failed_pms(&self) -> u64 {
        self.failed_pms.load(Ordering::Relaxed)
    }

    /// PMs currently draining on this shard.
    pub fn draining_pms(&self) -> u64 {
        self.draining_pms.load(Ordering::Relaxed)
    }

    /// Displaced VMs whose evacuation (forwarded into the ring by this
    /// shard) has not resolved yet.
    pub fn evac_pending(&self) -> u64 {
        self.evac_pending.load(Ordering::Relaxed)
    }

    /// Whether this shard serves without durability after a journal
    /// write failure.
    pub fn journal_degraded(&self) -> bool {
        self.journal_degraded.load(Ordering::Relaxed)
    }

    pub(crate) fn set_pm_health(&self, failed: u64, draining: u64) {
        self.failed_pms.store(failed, Ordering::Relaxed);
        self.draining_pms.store(draining, Ordering::Relaxed);
    }

    pub(crate) fn note_evac_started(&self) {
        self.evac_pending.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_evac_resolved(&self) {
        let _ = self
            .evac_pending
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| {
                Some(p.saturating_sub(1))
            });
    }

    pub(crate) fn set_journal_degraded(&self, degraded: bool) {
        self.journal_degraded.store(degraded, Ordering::Relaxed);
    }

    /// Migrations the online rebalancer has executed on this shard.
    pub fn rebalance_migrations(&self) -> u64 {
        self.rebalance_migrations.load(Ordering::Relaxed)
    }

    /// PMs the online rebalancer has drained to empty on this shard.
    pub fn rebalance_pms_freed(&self) -> u64 {
        self.rebalance_pms_freed.load(Ordering::Relaxed)
    }

    pub(crate) fn note_rebalanced(&self, migrations: u64, pms_freed: u64) {
        self.rebalance_migrations
            .fetch_add(migrations, Ordering::Relaxed);
        self.rebalance_pms_freed
            .fetch_add(pms_freed, Ordering::Relaxed);
    }

    /// Spread-out migrations the pressure plane has executed on this
    /// shard.
    pub fn pressure_migrations(&self) -> u64 {
        self.pressure_migrations.load(Ordering::Relaxed)
    }

    /// Hot PMs the most recent pressure tick observed on this shard.
    pub fn pressure_hot_pms(&self) -> u64 {
        self.pressure_hot_pms.load(Ordering::Relaxed)
    }

    pub(crate) fn note_pressure(&self, migrations: u64, hot_pms: u64) {
        self.pressure_migrations
            .fetch_add(migrations, Ordering::Relaxed);
        self.pressure_hot_pms.store(hot_pms, Ordering::Relaxed);
    }
}

/// What a worker hands back when the service stops.
pub struct ShardReport {
    /// Shard index.
    pub shard: u32,
    /// The final deployment state, for invariant audits and totals.
    pub model: DeploymentModel,
    /// Placements admitted by this shard.
    pub admitted: u64,
    /// Placements this shard answered `Rejected` for.
    pub rejected: u64,
    /// Requests this shard shed.
    pub shed: u64,
    /// Slowest sampled request lifecycles seen by this shard (empty
    /// unless the service ran with [`TraceLevel::Sampled`]).
    pub slow: SlowOpsDigest,
}

/// Per-shard gauge names, leaked once per service start so the
/// `&'static str`-keyed registry can carry them.
pub(crate) struct ShardGauges {
    pub opened: &'static str,
    pub cpu_used_cores: &'static str,
    pub queue_depth: &'static str,
}

impl ShardGauges {
    pub(crate) fn for_shard(idx: u32) -> Self {
        let leak = |s: String| -> &'static str { Box::leak(s.into_boxed_str()) };
        ShardGauges {
            opened: leak(format!("serve.shard{idx}.opened_pms")),
            cpu_used_cores: leak(format!("serve.shard{idx}.cpu_used_cores")),
            queue_depth: leak(format!("serve.shard{idx}.queue_depth")),
        }
    }
}

pub(crate) struct Worker {
    pub idx: u32,
    pub rx: std::sync::mpsc::Receiver<Msg>,
    /// Senders to every shard (self included), for fall-through.
    pub peers: Vec<SyncSender<Msg>>,
    pub model: DeploymentModel,
    pub summaries: Arc<Vec<ShardSummary>>,
    pub directory: Arc<Mutex<HashMap<VmId, u32>>>,
    pub metrics: Arc<Mutex<MetricsRegistry>>,
    pub gauges: ShardGauges,
    pub batch_max: usize,
    /// Deterministic mode never sheds.
    pub deterministic: bool,
    /// Write-ahead journal of this shard's decisions, when the service
    /// runs durable. Appends happen as decisions are made; the batch is
    /// committed (fsync per policy) *before* any reply is released.
    pub durable: Option<ShardDurable>,
    /// What a journal write failure does: `true` panics the worker
    /// (fail-stop), `false` enters journal-degraded mode — the shard
    /// keeps serving from memory and `/healthz` names it.
    pub fail_stop: bool,
    /// Service-wide ledger of VMs lost to evacuation: displaced by a
    /// PM failure and not re-placeable anywhere in the ring.
    pub lost: Arc<Mutex<Vec<VmId>>>,
    /// PMs on this shard currently draining (operator-initiated, as
    /// opposed to failed). The model tracks both identically; this set
    /// keeps the distinction for health reporting.
    pub draining: BTreeSet<PmId>,
    /// The service's trace epoch: all stage timestamps and heartbeats
    /// are offsets from this instant.
    pub epoch: Instant,
    /// How much per-request timing to record.
    pub level: TraceLevel,
    /// Shared span sink for sampled request lifecycles (present only
    /// under [`TraceLevel::Sampled`]).
    pub sink: Option<Arc<Mutex<TraceBuilder>>>,
    /// Rolling SLO window, fed once per batch.
    pub slo: Arc<Mutex<SloTracker>>,
    /// Per-shard top-K slowest sampled requests.
    pub slow: SlowOpsDigest,
    /// Idle-wait bound of the loop: waking this often stamps the
    /// liveness heartbeat even with no traffic.
    pub heartbeat_every: Duration,
    /// Online consolidation config (`None`: rebalancing off).
    pub rebalance: Option<RebalanceOptions>,
    /// When the last rebalance tick ran (or was skipped).
    pub last_rebalance: Instant,
    /// Online hotspot mitigation config (`None`: pressure plane off).
    pub pressure: Option<PressureOptions>,
    /// When the last pressure tick ran (or was skipped).
    pub last_pressure: Instant,
    /// Per-VM usage estimators, fed one synthesized sample per placed
    /// VM at each pressure tick.
    pub usage: slackvm_pressure::UsageTracker,
    /// Each PM's classification from the last pressure tick — the
    /// hysteresis memory the next tick classifies against.
    pub pressure_states: std::collections::BTreeMap<
        slackvm_pressure::StateKey,
        slackvm_pressure::PressureState,
    >,
}

/// Per-batch counter deltas, flushed under one metrics lock, plus the
/// replies to release once the flush lands.
#[derive(Default)]
struct BatchStats {
    requests: u64,
    admitted: u64,
    rejected: u64,
    shed: u64,
    removed: u64,
    resized: u64,
    unknown: u64,
    forwarded: u64,
    latencies_us: Vec<u64>,
    /// Queue-wait stage durations (enqueue → dequeue), when staged.
    queue_waits_us: Vec<u64>,
    /// Placement stage durations (dequeue → decision), when staged.
    places_us: Vec<u64>,
    /// Latencies of requests shed this batch (SLO "bad" events).
    shed_latencies_us: Vec<u64>,
    /// Displaced VMs re-placed this batch (locally or as a resolved
    /// evacuation forward).
    evac_replaced: u64,
    /// Displaced VMs lost this batch — no shard could absorb them.
    evac_lost: u64,
    /// Latencies of evacuations lost this batch (SLO "bad" events:
    /// losing a VM is the worst availability outcome the plane has).
    evac_lost_latencies_us: Vec<u64>,
    /// Sampled full lifecycles, emitted as spans after the commit.
    sampled: Vec<SampledLifecycle>,
    replies: Vec<(Sender<Reply>, Reply)>,
    /// Decisions to journal, in execution order (empty when the
    /// service is not durable).
    wal: Vec<(WalOp, WalOutcome)>,
    /// Journal bytes appended while executing the batch.
    wal_bytes: u64,
}

/// How many `try_send` attempts an evacuation forward makes against a
/// full peer queue before the VM is declared lost (backoff doubles
/// from 50µs between attempts).
const EVAC_RETRIES: u32 = 4;

/// What [`Worker::forward`] did with a request.
enum Forwarded {
    /// Handed to the next shard in the ring; it will answer.
    Sent,
    /// Answered `Rejected` here (ring exhausted or peer unreachable).
    Rejected,
    /// Answered `Shed` here (deadline already passed).
    Shed,
}

/// Epoch-relative stage timestamps of one sampled request, captured
/// while the batch executes and folded into Chrome-trace spans (one
/// track per trace ID) once the batch's commit lands.
struct SampledLifecycle {
    trace: u64,
    door_us: u64,
    enq_us: u64,
    deq_us: u64,
    dec_us: u64,
}

impl Worker {
    /// The worker loop: block for one message, drain up to `batch_max`,
    /// execute, flush. Returns the final state on [`Msg::Stop`] (after
    /// draining whatever is still queued).
    pub(crate) fn run(mut self) -> ShardReport {
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        let mut shed = 0u64;
        let mut draining = false;
        self.beat();
        // A recovered model may come back with hosts already failed;
        // publish them before the first request (the drain/fail
        // distinction is not persisted — a recovered down host reads
        // as failed until the operator recovers or re-drains it).
        self.summaries[self.idx as usize].set_pm_health(self.model.failed_pms() as u64, 0);
        loop {
            let first = if draining {
                match self.rx.try_recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            } else {
                match self.rx.recv_timeout(self.heartbeat_every) {
                    Ok(m) => m,
                    // An idle worker is a live worker: the timeout wake
                    // exists solely to stamp the liveness heartbeat so
                    // the `/healthz` watchdog can tell idle from wedged.
                    Err(RecvTimeoutError::Timeout) => {
                        self.beat();
                        // Interlock: mitigation and consolidation pull
                        // in opposite directions — if a pressure tick
                        // ran, consolidation waits for the next turn.
                        if !self.maybe_pressure() {
                            self.maybe_rebalance();
                        }
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            };
            let mut batch: Vec<Request> = Vec::with_capacity(self.batch_max);
            let mut msg = first;
            loop {
                match msg {
                    Msg::Stop => draining = true,
                    Msg::Req(r) => batch.push(r),
                    // Wedge simulation: sleep without heartbeating, as a
                    // worker stuck in a pathological placement would.
                    Msg::Stall(d) => std::thread::sleep(d),
                    Msg::DegradeJournal => self.journal_failure("append", None),
                    Msg::Rebalance(ack) => {
                        let tick = self.rebalance_tick();
                        let _ = ack.send(tick);
                    }
                    Msg::Pressure(ack) => {
                        let tick = self.pressure_tick();
                        let _ = ack.send(tick);
                    }
                }
                if batch.len() >= self.batch_max {
                    break;
                }
                match self.rx.try_recv() {
                    Ok(m) => msg = m,
                    Err(_) => break,
                }
            }
            if !batch.is_empty() {
                let mut stats = self.process(batch);
                admitted += stats.admitted;
                rejected += stats.rejected;
                shed += stats.shed;
                // Durability point: the batch's journal frames reach
                // stable storage (per the fsync policy) before anything
                // downstream — metrics, replies — can reveal the
                // decisions. A failure here fail-stops the worker or
                // flips the shard to journal-degraded mode, per
                // configuration — either way no reply is released on
                // the strength of an unpersisted commit.
                let commit = match self.durable.as_mut().map(|d| d.commit()) {
                    Some(Ok(stamp)) => Some(stamp),
                    Some(Err(e)) => {
                        self.journal_failure("commit", Some(&e));
                        None
                    }
                    None => None,
                };
                let commit_us = commit
                    .map(|c| c.wall.as_micros() as u64)
                    .unwrap_or_default();
                if self.level.stages() && commit_us > 0 {
                    // The commit gated every reply in the batch equally:
                    // its wall time is each request's wal_commit stage.
                    for (_, reply) in stats.replies.iter_mut() {
                        reply.commit_us = commit_us;
                    }
                }
                self.emit_sampled(&stats, commit_us);
                self.summaries[self.idx as usize].add_counts(
                    stats.admitted,
                    stats.rejected,
                    stats.shed,
                );
                self.flush(&stats, commit);
                // Replies go out only after the metrics flush: a client
                // that has its reply in hand can scrape the exposition
                // and find its own request already counted.
                for (tx, reply) in stats.replies {
                    let _ = tx.send(reply);
                }
                // Snapshot cadence runs after replies: it bounds future
                // recovery time and should not sit in any request's
                // latency path beyond the batch that crossed it.
                let model = &self.model;
                match self.durable.as_mut().map(|d| d.maybe_snapshot(model)) {
                    Some(Ok(true)) => {
                        self.metrics
                            .lock()
                            .expect("metrics lock")
                            .inc("durable.snapshots", 1);
                    }
                    Some(Err(e)) => self.journal_failure("snapshot", Some(&e)),
                    _ => {}
                }
            }
            // Background planes interleave with admission: the interval
            // checks are a few clock reads, a tick itself only runs
            // when due — and never while the worker is draining to
            // exit. Pressure preempts consolidation (see interlock
            // note above).
            if !draining && !self.maybe_pressure() {
                self.maybe_rebalance();
            }
            self.beat();
        }
        // Drain-to-snapshot: a clean shutdown leaves the freshest
        // possible checkpoint so the next start replays no tail.
        let model = &self.model;
        if let Some(Err(e)) = self.durable.as_mut().map(|d| d.snapshot_now(model)) {
            self.journal_failure("final snapshot", Some(&e));
        }
        ShardReport {
            shard: self.idx,
            model: self.model,
            admitted,
            rejected,
            shed,
            slow: self.slow,
        }
    }

    /// Stamps the liveness heartbeat the `/healthz` watchdog reads.
    fn beat(&self) {
        self.summaries[self.idx as usize].heartbeat(ms_since(self.epoch));
    }

    /// Runs a rebalance tick if one is configured and due.
    fn maybe_rebalance(&mut self) {
        let due = match &self.rebalance {
            Some(opts) => self.last_rebalance.elapsed() >= opts.every,
            None => false,
        };
        if due {
            self.rebalance_tick();
        }
    }

    /// Runs a pressure tick if one is configured and due. Returns
    /// whether a tick ran — the caller then skips consolidation for
    /// this turn (mitigation preempts it).
    fn maybe_pressure(&mut self) -> bool {
        let due = match &self.pressure {
            Some(opts) => self.last_pressure.elapsed() >= opts.every,
            None => false,
        };
        if due {
            self.pressure_tick();
        }
        due
    }

    /// One online hotspot-mitigation pass: feed the synthesized usage
    /// signal into the per-VM estimators, score the fleet, and execute
    /// at most `budget.max_concurrent` spread-out moves from the
    /// mitigation plan — journalled as migrations like consolidation,
    /// so `recover`/`fsck` replay the same history. The same safety
    /// interlocks as [`Worker::rebalance_tick`] pause the plane.
    fn pressure_tick(&mut self) -> PressureTick {
        self.last_pressure = Instant::now();
        let Some(opts) = self.pressure.clone() else {
            return PressureTick {
                skipped: Some(PressureSkip::Disabled),
                ..PressureTick::default()
            };
        };
        let skip = if !self.draining.is_empty() {
            Some(PressureSkip::Draining)
        } else if self.model.failed_pms() > 0 {
            Some(PressureSkip::FailedPms)
        } else if self.summaries[self.idx as usize].journal_degraded() {
            Some(PressureSkip::JournalDegraded)
        } else {
            let report = self
                .slo
                .lock()
                .expect("slo lock")
                .report(ms_since(self.epoch));
            (!report.healthy()).then_some(PressureSkip::SloBurn)
        };
        if skip.is_some() {
            return PressureTick {
                skipped: skip,
                ..PressureTick::default()
            };
        }
        let started = Instant::now();
        let (seed, hot_frac) = (opts.usage_seed, opts.hot_frac);
        slackvm_pressure::observe_model(&mut self.usage, &self.model, |vm| {
            slackvm_pressure::synth_frac(seed, vm, hot_frac)
        });
        let planned = {
            let tracker = &self.usage;
            slackvm_pressure::plan_mitigation_avoiding(
                &self.model,
                &opts.thresholds,
                &opts.budget,
                &|vm| tracker.demand(vm),
                &self.draining,
                &self.pressure_states,
            )
        };
        {
            let mut m = self.metrics.lock().expect("metrics lock");
            m.inc("pressure.plans", 1);
            m.observe("pressure.plan_us", started.elapsed().as_micros() as f64);
        }
        let done = PressureTick::default();
        let Ok(plan) = planned else { return done };
        let hot = plan.hot_before;
        let summary = &self.summaries[self.idx as usize];
        if plan.is_empty() {
            summary.note_pressure(0, hot as u64);
            self.metrics
                .lock()
                .expect("metrics lock")
                .set_gauge("pressure.hot_pms", hot as f64);
            self.pressure_states = plan.states_after;
            return PressureTick {
                skipped: None,
                hot_pms: hot,
                ..done
            };
        }
        // Planned against the model this thread exclusively owns, so it
        // cannot be stale — but checked, not trusted.
        if slackvm_rebalance::validate_plan_avoiding(&self.model, &plan.plan, &self.draining)
            .is_err()
        {
            return done;
        }
        let throttle = (opts.budget.max_concurrent as usize).min(plan.plan.moves.len());
        let mut migrated = 0u32;
        let mut journal: Vec<(WalOp, WalOutcome)> = Vec::new();
        for mv in plan.plan.moves.iter().take(throttle) {
            match self.model.migrate(mv.vm, mv.to) {
                Ok(from) if from == mv.from => {
                    migrated += 1;
                    if self.durable.is_some() {
                        journal.push((
                            WalOp::Migrate {
                                id: mv.vm,
                                from,
                                to: mv.to,
                            },
                            WalOutcome::Migrated,
                        ));
                    }
                }
                Ok(from) => {
                    let _ = self.model.migrate(mv.vm, from);
                    break;
                }
                Err(_) => break,
            }
        }
        if !journal.is_empty() {
            let mut failure = None;
            for (op, outcome) in journal {
                match self
                    .durable
                    .as_mut()
                    .expect("journal entries imply durable")
                    .append(op, outcome)
                {
                    Ok(_) => {}
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = failure {
                self.journal_failure("append", Some(&e));
            }
            // Spread-out migrations reach stable storage before the
            // tick reports itself done, exactly like an admission batch.
            if let Some(Err(e)) = self.durable.as_mut().map(|d| d.commit()) {
                self.journal_failure("commit", Some(&e));
            }
        }
        // Re-score the live model (a throttled tick executed only a
        // prefix of the plan, so the plan's predicted states may run
        // ahead of reality) for the next tick's hysteresis memory.
        self.pressure_states = {
            let tracker = &self.usage;
            slackvm_pressure::score_pressure(
                &self.model,
                &opts.thresholds,
                &|vm| tracker.demand(vm),
                &self.pressure_states,
            )
            .states()
        };
        {
            let mut m = self.metrics.lock().expect("metrics lock");
            if migrated > 0 {
                m.inc("pressure.migrations", migrated as u64);
            }
            m.set_gauge("pressure.hot_pms", hot as f64);
        }
        let summary = &self.summaries[self.idx as usize];
        summary.note_pressure(migrated as u64, hot as u64);
        let (alloc, cap) = self.model.totals();
        summary.refresh(self.model.opened_pms() as u64, alloc, cap);
        PressureTick {
            skipped: None,
            hot_pms: hot,
            migrations: migrated,
            deferred: (plan.plan.moves.len() - throttle) as u32,
        }
    }

    /// One online consolidation pass: plan against the live model this
    /// worker exclusively owns, validate, then execute at most
    /// `budget.max_concurrent` moves — journalled like any admission
    /// decision, so `recover`/`fsck` replay the same history. The
    /// safety interlocks pause consolidation whenever the shard has
    /// anything more important going on.
    fn rebalance_tick(&mut self) -> RebalanceTick {
        self.last_rebalance = Instant::now();
        let Some(opts) = self.rebalance.clone() else {
            return RebalanceTick {
                skipped: Some(RebalanceSkip::Disabled),
                ..RebalanceTick::default()
            };
        };
        let skip = if !self.draining.is_empty() {
            Some(RebalanceSkip::Draining)
        } else if self.model.failed_pms() > 0 {
            Some(RebalanceSkip::FailedPms)
        } else if self.summaries[self.idx as usize].journal_degraded() {
            Some(RebalanceSkip::JournalDegraded)
        } else {
            let report = self
                .slo
                .lock()
                .expect("slo lock")
                .report(ms_since(self.epoch));
            // An empty window scores healthy; only observed burn pauses.
            (!report.healthy()).then_some(RebalanceSkip::SloBurn)
        };
        if skip.is_some() {
            return RebalanceTick {
                skipped: skip,
                ..RebalanceTick::default()
            };
        }
        let started = Instant::now();
        let planned = slackvm_rebalance::plan_rebalance_avoiding(
            &self.model,
            &opts.budget,
            &self.draining,
        );
        {
            let mut m = self.metrics.lock().expect("metrics lock");
            m.inc("rebalance.plans", 1);
            m.observe("rebalance.plan_us", started.elapsed().as_micros() as f64);
        }
        let done = RebalanceTick::default();
        let Ok(plan) = planned else { return done };
        if plan.is_empty() {
            return done;
        }
        // The plan was made against the model this thread exclusively
        // owns, so it cannot be stale — but invariants are checked, not
        // trusted: execution still goes through the validator.
        if slackvm_rebalance::validate_plan_avoiding(&self.model, &plan, &self.draining).is_err() {
            return done;
        }
        let before = self.model.active_pms();
        let throttle = (opts.budget.max_concurrent as usize).min(plan.moves.len());
        let mut migrated = 0u32;
        let mut journal: Vec<(WalOp, WalOutcome)> = Vec::new();
        for mv in plan.moves.iter().take(throttle) {
            match self.model.migrate(mv.vm, mv.to) {
                Ok(from) if from == mv.from => {
                    migrated += 1;
                    if self.durable.is_some() {
                        journal.push((
                            WalOp::Migrate {
                                id: mv.vm,
                                from,
                                to: mv.to,
                            },
                            WalOutcome::Migrated,
                        ));
                    }
                }
                Ok(from) => {
                    // The validator makes this unreachable; put the VM
                    // back and stop rather than trust a surprise.
                    let _ = self.model.migrate(mv.vm, from);
                    break;
                }
                Err(_) => break,
            }
        }
        if !journal.is_empty() {
            let mut failure = None;
            for (op, outcome) in journal {
                match self
                    .durable
                    .as_mut()
                    .expect("journal entries imply durable")
                    .append(op, outcome)
                {
                    Ok(_) => {}
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = failure {
                self.journal_failure("append", Some(&e));
            }
            // Migrations reach stable storage before the tick reports
            // itself done, exactly like an admission batch.
            if let Some(Err(e)) = self.durable.as_mut().map(|d| d.commit()) {
                self.journal_failure("commit", Some(&e));
            }
        }
        let freed = before.saturating_sub(self.model.active_pms());
        {
            let mut m = self.metrics.lock().expect("metrics lock");
            if migrated > 0 {
                m.inc("rebalance.migrations", migrated as u64);
            }
            if freed > 0 {
                m.inc("rebalance.pms_freed", freed as u64);
            }
        }
        let summary = &self.summaries[self.idx as usize];
        summary.note_rebalanced(migrated as u64, freed as u64);
        let (alloc, cap) = self.model.totals();
        summary.refresh(self.model.opened_pms() as u64, alloc, cap);
        RebalanceTick {
            skipped: None,
            migrations: migrated,
            pms_freed: freed,
            deferred: (plan.moves.len() - throttle) as u32,
        }
    }

    /// Folds the batch's sampled lifecycles into the shared span sink
    /// (one Chrome-trace track per trace ID) and the shard's slow-
    /// request digest. The parent `serve.request` span stretches from
    /// door accept through the WAL commit that gated the reply.
    fn emit_sampled(&mut self, stats: &BatchStats, commit_us: u64) {
        let Some(sink) = &self.sink else { return };
        if stats.sampled.is_empty() {
            return;
        }
        let mut sink = sink.lock().expect("trace sink lock");
        for s in &stats.sampled {
            let end_us = s.dec_us + commit_us;
            let parent = TraceSpan {
                name: "serve.request",
                start_us: s.door_us,
                dur_us: end_us.saturating_sub(s.door_us),
            };
            sink.push_on(s.trace, parent);
            sink.push_on(
                s.trace,
                TraceSpan {
                    name: "serve.door",
                    start_us: s.door_us,
                    dur_us: s.enq_us.saturating_sub(s.door_us),
                },
            );
            sink.push_on(
                s.trace,
                TraceSpan {
                    name: "serve.queue_wait",
                    start_us: s.enq_us,
                    dur_us: s.deq_us.saturating_sub(s.enq_us),
                },
            );
            sink.push_on(
                s.trace,
                TraceSpan {
                    name: "serve.placement",
                    start_us: s.deq_us,
                    dur_us: s.dec_us.saturating_sub(s.deq_us),
                },
            );
            sink.push_on(
                s.trace,
                TraceSpan {
                    name: "serve.wal_commit",
                    start_us: s.dec_us,
                    dur_us: commit_us,
                },
            );
            self.slow.offer(parent);
        }
    }

    fn process(&mut self, batch: Vec<Request>) -> BatchStats {
        // One clock read amortized over the whole batch: deadlines are
        // checked and latencies stamped against the same instant.
        let now = Instant::now();
        let mut stats = BatchStats {
            latencies_us: Vec::with_capacity(batch.len()),
            ..BatchStats::default()
        };
        // Which decisions get journaled: state changes plus terminal
        // `Rejected` placements (themselves deterministic decisions
        // `slackvm fsck` re-derives). Shed and unknown-VM outcomes
        // never touched the model and are not logged.
        let journal = self.durable.is_some();
        let staged = self.level.stages();
        for req in batch {
            self.summaries[self.idx as usize].note_dequeued();
            stats.requests += 1;
            let latency_us = now.saturating_duration_since(req.enqueued).as_micros() as u64;
            // FIFO queues mean the oldest requests surface first, so
            // shedding on dequeue is shed-oldest-first by construction.
            if !self.deterministic {
                if let Some(deadline) = req.deadline {
                    if now > deadline {
                        stats.shed += 1;
                        stats.shed_latencies_us.push(latency_us);
                        self.answer(&mut stats, &req, Outcome::Shed, latency_us, None);
                        continue;
                    }
                }
            }
            stats.latencies_us.push(latency_us);
            // Stage stamp #1 of 2: the queue-wait hop ends here. The
            // second lands in `answer`, once the decision exists.
            let dequeued = if staged { Some(Instant::now()) } else { None };
            match req.op {
                Op::Place { id, spec } => match self.model.deploy(id, spec) {
                    Ok(pm) => {
                        stats.admitted += 1;
                        if journal {
                            stats
                                .wal
                                .push((WalOp::Place { id, spec }, WalOutcome::Placed(pm)));
                        }
                        self.directory
                            .lock()
                            .expect("directory lock")
                            .insert(id, self.idx);
                        self.answer(&mut stats, &req, Outcome::Placed(pm), latency_us, dequeued);
                    }
                    Err(SimError::DeploymentFailed(_)) => {
                        match self.forward(req, &mut stats, dequeued) {
                            Forwarded::Sent | Forwarded::Shed => {}
                            Forwarded::Rejected => {
                                stats.rejected += 1;
                                if journal {
                                    stats
                                        .wal
                                        .push((WalOp::Place { id, spec }, WalOutcome::Rejected));
                                }
                            }
                        }
                    }
                    Err(SimError::Unsatisfiable(_)) => {
                        // Exceeds an empty host: no shard can ever take
                        // it, don't waste fall-through hops.
                        stats.rejected += 1;
                        if journal {
                            stats
                                .wal
                                .push((WalOp::Place { id, spec }, WalOutcome::Rejected));
                        }
                        self.answer(&mut stats, &req, Outcome::Rejected, latency_us, dequeued);
                    }
                    Err(SimError::UnknownVm(_)) => unreachable!("deploy never reports UnknownVm"),
                },
                Op::Remove { id } => match self.model.remove(id) {
                    Ok(pm) => {
                        stats.removed += 1;
                        if journal {
                            stats
                                .wal
                                .push((WalOp::Remove { id }, WalOutcome::Removed(pm)));
                        }
                        self.directory.lock().expect("directory lock").remove(&id);
                        self.answer(&mut stats, &req, Outcome::Removed(pm), latency_us, dequeued);
                    }
                    Err(_) => {
                        stats.unknown += 1;
                        self.answer(&mut stats, &req, Outcome::UnknownVm, latency_us, dequeued);
                    }
                },
                Op::Resize { id, vcpus, mem_mib } => match self.model.resize(id, vcpus, mem_mib) {
                    Ok(()) => {
                        stats.resized += 1;
                        if journal {
                            stats.wal.push((
                                WalOp::Resize { id, vcpus, mem_mib },
                                WalOutcome::Resized { accepted: true },
                            ));
                        }
                        self.answer(
                            &mut stats,
                            &req,
                            Outcome::Resized { accepted: true },
                            latency_us,
                            dequeued,
                        );
                    }
                    Err(SimError::UnknownVm(_)) => {
                        stats.unknown += 1;
                        self.answer(&mut stats, &req, Outcome::UnknownVm, latency_us, dequeued);
                    }
                    Err(_) => {
                        stats.resized += 1;
                        if journal {
                            stats.wal.push((
                                WalOp::Resize { id, vcpus, mem_mib },
                                WalOutcome::Resized { accepted: false },
                            ));
                        }
                        self.answer(
                            &mut stats,
                            &req,
                            Outcome::Resized { accepted: false },
                            latency_us,
                            dequeued,
                        );
                    }
                },
                Op::FailPm { pm, .. } | Op::DrainPm { pm, .. } => {
                    let drain = matches!(req.op, Op::DrainPm { .. });
                    let evicted = self.model.fail_host(pm);
                    if drain {
                        self.draining.insert(pm);
                    } else {
                        self.draining.remove(&pm);
                    }
                    if journal {
                        let op = if drain {
                            WalOp::DrainPm { pm }
                        } else {
                            WalOp::FailPm { pm }
                        };
                        stats
                            .wal
                            .push((op, WalOutcome::HostDown { evicted: evicted.len() as u32 }));
                    }
                    {
                        let mut dir = self.directory.lock().expect("directory lock");
                        for (id, _) in &evicted {
                            dir.remove(id);
                        }
                    }
                    let total = evicted.len() as u32;
                    let (replaced, lost) = self.evacuate(evicted, &mut stats, journal);
                    let outcome = if drain {
                        Outcome::PmDraining {
                            evicted: total,
                            replaced,
                            lost,
                        }
                    } else {
                        Outcome::PmFailed {
                            evicted: total,
                            replaced,
                            lost,
                        }
                    };
                    self.answer(&mut stats, &req, outcome, latency_us, dequeued);
                }
                Op::RecoverPm { pm, .. } => {
                    self.model.repair_host(pm);
                    self.draining.remove(&pm);
                    if journal {
                        stats.wal.push((WalOp::RecoverPm { pm }, WalOutcome::HostUp));
                    }
                    self.answer(&mut stats, &req, Outcome::PmRecovered, latency_us, dequeued);
                }
            }
        }
        let (alloc, cap) = self.model.totals();
        let summary = &self.summaries[self.idx as usize];
        summary.refresh(self.model.opened_pms() as u64, alloc, cap);
        let down = self.model.failed_pms() as u64;
        let draining_now = self.draining.len() as u64;
        summary.set_pm_health(down.saturating_sub(draining_now), draining_now);
        if self.durable.is_some() {
            let mut failure = None;
            let wal = std::mem::take(&mut stats.wal);
            for (op, outcome) in wal {
                match self.durable.as_mut().expect("durable checked above").append(op, outcome) {
                    Ok(bytes) => stats.wal_bytes += bytes,
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = failure {
                self.journal_failure("append", Some(&e));
            }
        }
        stats
    }

    /// Re-places the VMs a failed (or draining) host displaced, through
    /// the normal admission path: local re-placement first (journalled
    /// like any placement), then ring fall-through as evacuation
    /// requests with bounded retry. A VM no shard can absorb is
    /// recorded in the lost-VM ledger by ID. Returns how many were
    /// re-placed locally and how many are already known lost;
    /// forwarded evacuations resolve later and are tallied under
    /// `serve.evac.*` as each lands.
    fn evacuate(
        &mut self,
        evicted: Vec<(VmId, slackvm_model::VmSpec)>,
        stats: &mut BatchStats,
        journal: bool,
    ) -> (u32, u32) {
        let mut replaced = 0u32;
        let mut lost = 0u32;
        let single = self.peers.len() == 1;
        for (id, spec) in evicted {
            match self.model.deploy(id, spec) {
                Ok(pm) => {
                    replaced += 1;
                    stats.admitted += 1;
                    stats.evac_replaced += 1;
                    if journal {
                        stats
                            .wal
                            .push((WalOp::Place { id, spec }, WalOutcome::Placed(pm)));
                    }
                    self.directory
                        .lock()
                        .expect("directory lock")
                        .insert(id, self.idx);
                }
                Err(_) if single => {
                    // One shard is the whole ring: a local refusal is a
                    // terminal rejection, the VM is lost.
                    lost += 1;
                    stats.rejected += 1;
                    stats.evac_lost += 1;
                    stats.evac_lost_latencies_us.push(0);
                    if journal {
                        stats
                            .wal
                            .push((WalOp::Place { id, spec }, WalOutcome::Rejected));
                    }
                    self.lost.lock().expect("lost ledger lock").push(id);
                }
                Err(_) => {
                    let now = Instant::now();
                    let (tx, _) = std::sync::mpsc::channel();
                    let req = Request {
                        // No sampling track: evacuations carry trace 0
                        // and a sequence no sampling period divides.
                        seq: u64::MAX,
                        op: Op::Place { id, spec },
                        deadline: None,
                        door: now,
                        enqueued: now,
                        trace: 0,
                        tried: 0,
                        evac: Some(self.idx),
                        reply: tx,
                    };
                    self.summaries[self.idx as usize].note_evac_started();
                    match self.forward(req, stats, None) {
                        Forwarded::Sent => {}
                        Forwarded::Shed => unreachable!("evacuations carry no deadline"),
                        Forwarded::Rejected => {
                            // `answer` already tallied the loss (ledger,
                            // counters, pending); this shard's model did
                            // refuse the VM, so the terminal rejection
                            // is journalled here like any other.
                            lost += 1;
                            stats.rejected += 1;
                            if journal {
                                stats
                                    .wal
                                    .push((WalOp::Place { id, spec }, WalOutcome::Rejected));
                            }
                        }
                    }
                }
            }
        }
        (replaced, lost)
    }

    /// Rejection fall-through: hand the request to the next shard in
    /// the ring. `try_send`, never `send` — a worker blocking on a
    /// full peer queue while that peer blocks back is a deadlock.
    /// Evacuation requests get a few bounded, backed-off retries
    /// against a full peer before giving up (losing a VM is worth a
    /// few hundred microseconds; an ordinary placement is not).
    /// [`Forwarded::Rejected`]/[`Forwarded::Shed`] mean the request
    /// was answered terminally here.
    fn forward(
        &self,
        mut req: Request,
        stats: &mut BatchStats,
        dequeued: Option<Instant>,
    ) -> Forwarded {
        // A request whose deadline has already passed must not burn a
        // fall-through hop: re-enqueueing it at a peer only to be shed
        // on dequeue there wastes a queue slot and inflates its
        // latency. Shed it now. (Evacuations carry no deadline.)
        if !self.deterministic {
            if let (Some(deadline), now) = (req.deadline, Instant::now()) {
                if now > deadline {
                    let latency_us = now.saturating_duration_since(req.enqueued).as_micros() as u64;
                    stats.shed += 1;
                    stats.shed_latencies_us.push(latency_us);
                    self.answer(stats, &req, Outcome::Shed, latency_us, dequeued);
                    return Forwarded::Shed;
                }
            }
        }
        let shards = self.peers.len() as u32;
        if req.tried + 1 >= shards {
            let latency_us = Instant::now()
                .saturating_duration_since(req.enqueued)
                .as_micros() as u64;
            self.answer(stats, &req, Outcome::Rejected, latency_us, dequeued);
            return Forwarded::Rejected;
        }
        req.tried += 1;
        let next = ((self.idx + 1) % shards) as usize;
        let evac = req.evac.is_some();
        let mut attempts = 0u32;
        let mut backoff = Duration::from_micros(50);
        let mut msg = Msg::Req(req);
        loop {
            self.summaries[next].note_enqueued();
            match self.peers[next].try_send(msg) {
                Ok(()) => {
                    stats.forwarded += 1;
                    return Forwarded::Sent;
                }
                Err(TrySendError::Full(Msg::Req(r))) => {
                    self.summaries[next].note_dequeued();
                    attempts += 1;
                    if evac && attempts < EVAC_RETRIES {
                        std::thread::sleep(backoff);
                        backoff *= 2;
                        msg = Msg::Req(r);
                        continue;
                    }
                    let latency_us = Instant::now()
                        .saturating_duration_since(r.enqueued)
                        .as_micros() as u64;
                    self.answer(stats, &r, Outcome::Rejected, latency_us, dequeued);
                    return Forwarded::Rejected;
                }
                Err(TrySendError::Disconnected(Msg::Req(r))) => {
                    self.summaries[next].note_dequeued();
                    let latency_us = Instant::now()
                        .saturating_duration_since(r.enqueued)
                        .as_micros() as u64;
                    self.answer(stats, &r, Outcome::Rejected, latency_us, dequeued);
                    return Forwarded::Rejected;
                }
                Err(_) => unreachable!("only Req messages are forwarded"),
            }
        }
    }

    /// Queues the reply for release after the batch's metrics flush.
    /// (A gone receiver at send time — caller stopped waiting — is not
    /// an error.) `dequeued` is the request's stage stamp #1; stamp #2
    /// (the decision instant) is read here, closing the placement hop.
    fn answer(
        &self,
        stats: &mut BatchStats,
        req: &Request,
        outcome: Outcome,
        latency_us: u64,
        dequeued: Option<Instant>,
    ) {
        // Evacuation resolution: no client is listening, so the
        // terminal outcome lands on the origin shard's scoreboard —
        // and, for a loss, in the service-wide ledger by VM ID.
        if let Some(origin) = req.evac {
            match outcome {
                Outcome::Placed(_) => stats.evac_replaced += 1,
                Outcome::Rejected => {
                    stats.evac_lost += 1;
                    stats.evac_lost_latencies_us.push(latency_us);
                    if let Some(id) = req.op.vm() {
                        self.lost.lock().expect("lost ledger lock").push(id);
                    }
                }
                _ => {}
            }
            self.summaries[origin as usize].note_evac_resolved();
        }
        let (queue_us, place_us) = match dequeued {
            Some(deq) => {
                let decided = Instant::now();
                let queue_us = deq.saturating_duration_since(req.enqueued).as_micros() as u64;
                let place_us = decided.saturating_duration_since(deq).as_micros() as u64;
                stats.queue_waits_us.push(queue_us);
                stats.places_us.push(place_us);
                if let Some(every) = self.level.sample_every() {
                    if req.seq % every == 0 && req.trace != 0 {
                        stats.sampled.push(SampledLifecycle {
                            trace: req.trace,
                            door_us: req.door.saturating_duration_since(self.epoch).as_micros()
                                as u64,
                            enq_us: req.enqueued.saturating_duration_since(self.epoch).as_micros()
                                as u64,
                            deq_us: deq.saturating_duration_since(self.epoch).as_micros() as u64,
                            dec_us: decided.saturating_duration_since(self.epoch).as_micros()
                                as u64,
                        });
                    }
                }
                (queue_us, place_us)
            }
            None => (0, 0),
        };
        stats.replies.push((
            req.reply.clone(),
            Reply {
                seq: req.seq,
                shard: Some(self.idx),
                outcome,
                latency_us,
                trace: req.trace,
                queue_us,
                place_us,
                commit_us: 0,
            },
        ));
    }

    /// A journal write failed. Under fail-stop the worker panics —
    /// the shard goes down rather than serve without durability. The
    /// default degrades gracefully: drop the journal, keep serving
    /// from memory, and let `/healthz` name the degraded shard.
    fn journal_failure(&mut self, stage: &str, err: Option<&DurableError>) {
        let detail = err
            .map(|e| e.to_string())
            .unwrap_or_else(|| "fault injected".into());
        if self.fail_stop {
            panic!("shard {}: wal {stage} failed: {detail}", self.idx);
        }
        if self.durable.take().is_some() {
            eprintln!(
                "slackvm-serve: shard {}: journal {stage} failed ({detail}); \
                 entering journal-degraded mode — decisions are no longer persisted",
                self.idx
            );
            self.summaries[self.idx as usize].set_journal_degraded(true);
            self.metrics
                .lock()
                .expect("metrics lock")
                .inc("serve.journal_degraded", 1);
        }
    }

    fn flush(&self, stats: &BatchStats, commit: Option<CommitStamp>) {
        let summary = &self.summaries[self.idx as usize];
        let mut m = self.metrics.lock().expect("metrics lock");
        m.inc("serve.requests", stats.requests);
        if stats.wal_bytes > 0 {
            m.inc("durable.wal_bytes", stats.wal_bytes);
        }
        if let Some(stamp) = commit {
            if let Some(took) = stamp.fsync {
                m.inc("durable.fsyncs", 1);
                m.observe("durable.fsync", took.as_micros() as f64);
            }
            if self.level.stages() {
                m.observe("serve.wal_commit_us", stamp.wall.as_micros() as f64);
            }
        }
        for us in &stats.queue_waits_us {
            m.observe("serve.queue_wait_us", *us as f64);
        }
        for us in &stats.places_us {
            m.observe("serve.placement_us", *us as f64);
        }
        m.inc("serve.admitted", stats.admitted);
        m.inc("serve.rejected", stats.rejected);
        m.inc("serve.shed", stats.shed);
        m.inc("serve.removed", stats.removed);
        m.inc("serve.resized", stats.resized);
        m.inc("serve.unknown_vm", stats.unknown);
        m.inc("serve.forwarded", stats.forwarded);
        if stats.evac_replaced > 0 {
            m.inc("serve.evac.replaced", stats.evac_replaced);
        }
        if stats.evac_lost > 0 {
            m.inc("serve.evac.lost", stats.evac_lost);
        }
        m.observe("serve.batch", stats.requests as f64);
        for us in &stats.latencies_us {
            m.observe("serve.admit", *us as f64);
        }
        m.set_gauge(self.gauges.opened, summary.opened_pms() as f64);
        m.set_gauge(
            self.gauges.cpu_used_cores,
            slackvm_model::Millicores(summary.used_cpu_millicores()).as_cores_f64(),
        );
        m.set_gauge(self.gauges.queue_depth, summary.queued() as f64);
        drop(m);
        // One SLO-window update per batch: executed requests are good
        // events scored on latency, shed requests are bad events.
        let t_ms = ms_since(self.epoch);
        let mut slo = self.slo.lock().expect("slo lock");
        for us in &stats.latencies_us {
            slo.record(t_ms, *us, true);
        }
        for us in &stats.shed_latencies_us {
            slo.record(t_ms, *us, false);
        }
        // A lost VM is the worst availability outcome the plane has:
        // every loss burns SLO error budget like a shed request.
        for us in &stats.evac_lost_latencies_us {
            slo.record(t_ms, *us, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_queue_depth_never_underflows() {
        let s = ShardSummary::default();
        s.note_dequeued();
        assert_eq!(s.queued(), 0);
        s.note_enqueued();
        s.note_enqueued();
        s.note_dequeued();
        assert_eq!(s.queued(), 1);
    }

    #[test]
    fn shard_gauges_are_distinct_per_shard() {
        let a = ShardGauges::for_shard(0);
        let b = ShardGauges::for_shard(1);
        assert_ne!(a.opened, b.opened);
        assert!(a.opened.contains("shard0"));
        assert!(b.queue_depth.contains("shard1"));
    }
}
