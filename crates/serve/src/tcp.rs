//! Line-JSON-over-TCP frontend.
//!
//! A plain `std::net` accept loop — one thread per connection, no async
//! runtime. Each connection speaks the [`crate::wire`] protocol, one
//! request line per reply line. Two extras ride on the same port:
//!
//! - an HTTP `GET` first line (e.g. `curl host:port/metrics`) is
//!   answered with a one-shot Prometheus exposition snapshot;
//! - `{"op":"shutdown"}` acknowledges, stops the accept loop, and
//!   [`TcpServer::run`] returns the drained service report.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::ServeError;
use crate::request::{Outcome, Reply};
use crate::service::{PlacementService, ServiceReport};
use crate::wire;

/// Frontend-level totals, returned by [`TcpServer::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Connections accepted (not counting the internal shutdown wake-up).
    pub connections: u64,
    /// Request lines executed.
    pub requests: u64,
    /// Lines that failed to parse.
    pub bad_lines: u64,
}

#[derive(Default)]
struct SharedStats {
    connections: AtomicU64,
    requests: AtomicU64,
    bad_lines: AtomicU64,
}

/// The TCP frontend: owns the listener and the service.
pub struct TcpServer {
    listener: TcpListener,
    service: PlacementService,
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) in front of an
    /// already-started service.
    pub fn bind(addr: &str, service: PlacementService) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        Ok(TcpServer { listener, service })
    }

    /// The bound address (the resolved port when bound with port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        Ok(self.listener.local_addr()?)
    }

    /// Serves until a client sends `{"op":"shutdown"}`, then drains the
    /// service and returns the frontend totals plus the final report.
    pub fn run(self) -> Result<(TcpStats, ServiceReport), ServeError> {
        let addr = self.local_addr()?;
        // `SyncSender` is `Sync`, so the whole service can be shared
        // across connection threads behind one `Arc`.
        let service = Arc::new(self.service);
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(SharedStats::default());
        let mut handlers = Vec::new();

        for conn in self.listener.incoming() {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            stats.connections.fetch_add(1, Ordering::Relaxed);
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            handlers.push(
                std::thread::Builder::new()
                    .name("slackvm-conn".into())
                    .spawn(move || handle_connection(stream, addr, &service, &stop, &stats))
                    .map_err(ServeError::Io)?,
            );
        }
        drop(self.listener);
        for h in handlers {
            let _ = h.join();
        }
        let service = Arc::try_unwrap(service)
            .unwrap_or_else(|_| unreachable!("all connection threads joined"));
        let report = service.stop();
        Ok((
            TcpStats {
                connections: stats.connections.load(Ordering::Relaxed),
                requests: stats.requests.load(Ordering::Relaxed),
                bad_lines: stats.bad_lines.load(Ordering::Relaxed),
            },
            report,
        ))
    }
}

fn handle_connection(
    stream: TcpStream,
    addr: SocketAddr,
    service: &PlacementService,
    stop: &AtomicBool,
    stats: &SharedStats,
) {
    // Short read timeouts keep handlers responsive to the stop flag
    // even while a client idles with the connection open. Nagle off:
    // one-line replies must not wait out a delayed ACK.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // `read_line` appends, so a timeout mid-line keeps the partial
        // request and the next pass completes it.
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        if line.trim().is_empty() {
            line.clear();
            continue;
        }
        // The request line is complete: the request is through the
        // door. Everything before this instant was the client's wire
        // time; everything after is the service's.
        let door = Instant::now();
        // An HTTP probe: answer one properly framed response through
        // the same responder the dedicated `--obs-addr` listener uses
        // (`/metrics`, `/healthz`, `/slo`), and close.
        if line.starts_with("GET ") {
            let path = line.split_whitespace().nth(1).unwrap_or("/metrics");
            let handle = service.obs_handle();
            let _ = writer.write_all(crate::obs::respond(path, &handle).as_bytes());
            let _ = writer.flush();
            break;
        }
        let mut answered: Option<Reply> = None;
        let response = match wire::parse_request(&line) {
            Ok(wire::WireRequest::Op(op)) => {
                stats.requests.fetch_add(1, Ordering::Relaxed);
                match service.call_from(op.clone(), door) {
                    Ok(reply) => {
                        let rendered = wire::render_reply(&op, &reply);
                        answered = Some(reply);
                        rendered
                    }
                    Err(e) => wire::render_error(
                        "error",
                        op.vm().map(|v| v.0),
                        &e.to_string().replace('"', "'"),
                    ),
                }
            }
            Ok(wire::WireRequest::Ping) => {
                stats.requests.fetch_add(1, Ordering::Relaxed);
                wire::render_pong()
            }
            Ok(wire::WireRequest::Stats) => {
                stats.requests.fetch_add(1, Ordering::Relaxed);
                let (mut admitted, mut rejected, mut shed, mut opened) = (0, 0, 0, 0);
                for s in service.summaries() {
                    admitted += s.admitted();
                    rejected += s.rejected();
                    shed += s.shed();
                    opened += s.opened_pms();
                }
                wire::render_stats(admitted, rejected, shed, opened)
            }
            Ok(wire::WireRequest::Shutdown) => {
                stats.requests.fetch_add(1, Ordering::Relaxed);
                let _ = writeln!(writer, "{}", wire::render_shutdown_ack());
                let _ = writer.flush();
                stop.store(true, Ordering::Relaxed);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr);
                break;
            }
            Err(e) => {
                stats.bad_lines.fetch_add(1, Ordering::Relaxed);
                wire::render_error("parse", None, &e.to_string().replace('"', "'"))
            }
        };
        let write_started = Instant::now();
        if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
            break;
        }
        // The reply's bytes are on the wire: close the lifecycle's
        // final stage (histogram + sampled `serve.reply` span).
        if let Some(reply) = answered {
            service.note_reply_write(&reply, write_started);
        }
        line.clear();
    }
}

/// Classifies a wire [`Outcome`] the way the stats counters do — used
/// by the bombard client to tally TCP replies.
pub fn classify(reply: &wire::WireReply) -> Outcome {
    if reply.ok {
        let pm = slackvm_model::PmId(reply.pm.unwrap_or(0) as u32);
        match reply.op.as_deref() {
            Some("remove") => Outcome::Removed(pm),
            Some("resize") => Outcome::Resized {
                accepted: reply.accepted.unwrap_or(false),
            },
            Some("fail-pm") => Outcome::PmFailed {
                evicted: reply.evicted.unwrap_or(0) as u32,
                replaced: reply.replaced.unwrap_or(0) as u32,
                lost: reply.lost.unwrap_or(0) as u32,
            },
            Some("drain-pm") => Outcome::PmDraining {
                evicted: reply.evicted.unwrap_or(0) as u32,
                replaced: reply.replaced.unwrap_or(0) as u32,
                lost: reply.lost.unwrap_or(0) as u32,
            },
            Some("recover-pm") => Outcome::PmRecovered,
            _ => Outcome::Placed(pm),
        }
    } else {
        match reply.error.as_deref() {
            Some("rejected") => Outcome::Rejected,
            Some("shed") => Outcome::Shed,
            _ => Outcome::UnknownVm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ModelSpec, ServeConfig};
    use std::io::BufRead;

    fn server() -> TcpServer {
        let service = PlacementService::start(ServeConfig {
            model: ModelSpec::Shared {
                topology: "cores=8".into(),
                mem_mib: slackvm_model::gib(32),
                policy: "first-fit".into(),
                fleet_cap: None,
            },
            ..ServeConfig::default()
        })
        .unwrap();
        TcpServer::bind("127.0.0.1:0", service).unwrap()
    }

    #[test]
    fn wire_round_trip_place_stats_shutdown() {
        let server = server();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut ask = |req: &str| -> String {
            writeln!(writer, "{req}").unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line.trim().to_string()
        };

        assert_eq!(ask("{\"op\":\"ping\"}"), wire::render_pong());
        let placed = ask("{\"op\":\"place\",\"id\":1,\"vcpus\":2,\"mem_mib\":2048,\"level\":2}");
        let parsed = wire::parse_reply(&placed).unwrap();
        assert!(parsed.ok, "{placed}");
        let stats_line = ask("{\"op\":\"stats\"}");
        assert!(stats_line.contains("\"admitted\":1"), "{stats_line}");
        let bad = ask("{\"op\":\"warp\"}");
        assert!(bad.contains("\"ok\":false"), "{bad}");
        assert_eq!(ask("{\"op\":\"shutdown\"}"), wire::render_shutdown_ack());
        drop(writer);
        drop(reader);

        let (tcp_stats, report) = handle.join().unwrap();
        assert_eq!(report.admitted(), 1);
        assert_eq!(tcp_stats.bad_lines, 1);
        assert!(tcp_stats.requests >= 4);
        report.check_invariants().unwrap();
    }

    #[test]
    fn http_get_serves_a_prometheus_snapshot() {
        let server = server();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());

        use std::io::Read;
        let mut probe = |path: &str| -> String {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(stream, "GET {path} HTTP/1.1\r\n\r\n").unwrap();
            stream.flush().unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            response
        };
        let response = probe("/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("Content-Length:"), "{response}");
        assert!(response.contains("slackvm_build_info{"), "{response}");
        let health = probe("/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.contains("\"healthy\":true"), "{health}");
        let slo = probe("/slo");
        assert!(slo.contains("\"error_budget_remaining\""), "{slo}");

        let mut stream = TcpStream::connect(addr).unwrap();
        writeln!(stream, "{{\"op\":\"shutdown\"}}").unwrap();
        let (_, report) = handle.join().unwrap();
        report.check_invariants().unwrap();
    }
}
