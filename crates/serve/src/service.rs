//! The embeddable placement service.
//!
//! [`PlacementService::start`] spawns one worker thread per shard, each
//! owning a partition of the fleet, plus an optional sampler thread.
//! Clients submit [`Op`]s through a bounded queue and receive [`Reply`]s
//! on a channel they provide ([`PlacementService::submit_with`]) or via
//! the synchronous convenience [`PlacementService::call`].
//!
//! Routing: `Place` goes to the shard with the shallowest queue (ties
//! broken by least-allocated CPU, then lowest index); `Remove`/`Resize`
//! are routed by the placement directory — a VM the directory does not
//! know is answered `UnknownVm` at the front door without touching a
//! worker. The PM-lifecycle control ops (`FailPm`/`RecoverPm`/
//! `DrainPm`) carry their shard explicitly: PM ids are shard-local, so
//! the operator names the shard that owns the machine.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use slackvm_model::VmId;
use slackvm_telemetry::{
    prometheus, MetricsRegistry, SloReport, SloTracker, SlowOpsDigest, TimeSeriesStore,
    TraceBuilder, TraceSpan,
};

use crate::error::ServeError;
use crate::request::{Op, Outcome, Reply, ServeConfig};
use crate::shard::{ms_since, Msg, Request, ShardGauges, ShardReport, ShardSummary, Worker};

/// Mints a request-scoped trace ID from a sequence number: splitmix64
/// masked to 48 bits (so IDs survive JSON round trips as exact
/// integers), never zero.
fn mint_trace(seq: u64) -> u64 {
    let mut z = seq.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let id = z & ((1u64 << 48) - 1);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Final state handed back by [`PlacementService::stop`].
pub struct ServiceReport {
    /// One report per shard, in shard order.
    pub shards: Vec<ShardReport>,
    /// The sampled request lifecycles as Chrome trace-event JSON
    /// (`None` unless the service ran with
    /// [`TraceLevel::Sampled`](crate::TraceLevel::Sampled)).
    pub trace_json: Option<String>,
    /// VMs lost to evacuation, by ID: displaced by a PM failure or
    /// drain and not re-placeable on any shard.
    pub lost_vms: Vec<VmId>,
}

impl ServiceReport {
    /// PMs opened across the whole fleet.
    pub fn opened_pms(&self) -> u32 {
        self.shards.iter().map(|s| s.model.opened_pms()).sum()
    }

    /// Total placements admitted.
    pub fn admitted(&self) -> u64 {
        self.shards.iter().map(|s| s.admitted).sum()
    }

    /// Total placements rejected.
    pub fn rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Total requests shed.
    pub fn shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed).sum()
    }

    /// Renders the per-shard slow-request digests, one header per shard
    /// that sampled anything; empty when tracing was not sampled.
    pub fn render_slow_requests(&self) -> String {
        let mut out = String::new();
        for shard in &self.shards {
            if shard.slow.is_empty() {
                continue;
            }
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("shard {}:\n{}", shard.shard, shard.slow.render()));
        }
        out
    }

    /// Audits every shard's final model state (capacity bounds,
    /// accounting consistency). Errors carry the shard index.
    pub fn check_invariants(&self) -> Result<(), String> {
        for report in &self.shards {
            report
                .model
                .check_invariants()
                .map_err(|e| format!("shard {}: {e}", report.shard))?;
        }
        Ok(())
    }
}

/// A running sharded placement service. See the module docs.
pub struct PlacementService {
    senders: Vec<SyncSender<Msg>>,
    summaries: Arc<Vec<ShardSummary>>,
    directory: Arc<Mutex<HashMap<VmId, u32>>>,
    metrics: Arc<Mutex<MetricsRegistry>>,
    series: Option<Arc<Mutex<TimeSeriesStore>>>,
    workers: Vec<JoinHandle<ShardReport>>,
    sampler: Option<(JoinHandle<()>, Arc<AtomicBool>)>,
    seq: AtomicU64,
    config: ServeConfig,
    epoch: Instant,
    recovery: Vec<slackvm_durable::RecoveryReport>,
    slo: Arc<Mutex<SloTracker>>,
    sink: Option<Arc<Mutex<TraceBuilder>>>,
    lost: Arc<Mutex<Vec<VmId>>>,
}

impl PlacementService {
    /// Validates the configuration, builds one deployment model per
    /// shard, and spawns the worker (and sampler) threads.
    pub fn start(config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let shards = config.shards as usize;
        let mut models = Vec::with_capacity(shards);
        for _ in 0..shards {
            let mut model = config.model.build(config.shards)?;
            model.set_index_mode(config.index);
            models.push(model);
        }

        // Durable mode: verify (or initialize) the state directory's
        // manifest, then recover each shard's model from its snapshot
        // and journal tail before any worker starts taking requests.
        let mut durables: Vec<Option<slackvm_durable::ShardDurable>> =
            (0..shards).map(|_| None).collect();
        let mut recovery: Vec<slackvm_durable::RecoveryReport> = Vec::new();
        if let Some(opts) = &config.durable {
            std::fs::create_dir_all(&opts.dir).map_err(ServeError::Io)?;
            let manifest = config.manifest();
            if opts.dir.join(slackvm_durable::MANIFEST_FILE).exists() {
                let found = slackvm_durable::Manifest::load(&opts.dir)?;
                if found != manifest {
                    return Err(ServeError::Config(format!(
                        "state directory {} was written under a different service shape \
                         (manifest records {} shards, model {:?}; configuration wants {} \
                         shards, model {:?})",
                        opts.dir.display(),
                        found.shards,
                        found.model,
                        manifest.shards,
                        manifest.model,
                    )));
                }
            } else {
                manifest.store(&opts.dir)?;
            }
            for (idx, model) in models.iter_mut().enumerate() {
                let (handle, report) =
                    slackvm_durable::ShardDurable::open(opts, idx as u32, model)?;
                durables[idx] = Some(handle);
                recovery.push(report);
            }
        }

        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::sync_channel::<Msg>(config.queue_depth);
            senders.push(tx);
            receivers.push(rx);
        }
        let summaries: Arc<Vec<ShardSummary>> =
            Arc::new((0..shards).map(|_| ShardSummary::default()).collect());
        let directory: Arc<Mutex<HashMap<VmId, u32>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut registry = MetricsRegistry::new();
        // Batch sizes live in [1, batch_max]; powers of two cover the
        // range without the microsecond-scale tail of the default
        // duration layout.
        registry.register_histogram("serve.batch", (0..12).map(|i| (1u64 << i) as f64).collect());
        if !recovery.is_empty() {
            let replayed: u64 = recovery.iter().map(|r| r.records_replayed).sum();
            let recovery_ms: f64 = recovery.iter().map(|r| r.elapsed.as_secs_f64() * 1e3).sum();
            registry.inc("durable.records_replayed", replayed);
            registry.set_gauge("durable.recovery_ms", recovery_ms);
        }
        let metrics = Arc::new(Mutex::new(registry));
        let series = config
            .sample_interval_ms
            .map(|_| Arc::new(Mutex::new(TimeSeriesStore::new())));
        let epoch = Instant::now();
        let slo = Arc::new(Mutex::new(SloTracker::new(config.slo)));
        let sink = config
            .trace
            .sample_every()
            .map(|_| Arc::new(Mutex::new(TraceBuilder::new())));
        // Seed every heartbeat at the epoch so the watchdog never
        // mistakes "worker thread not yet scheduled" for a stall.
        for summary in summaries.iter() {
            summary.heartbeat(0);
        }

        // Recovered placements must be routable before the first
        // request: seed the remove/resize directory and the router's
        // scoreboards from each shard's restored state.
        if config.durable.is_some() {
            let mut dir = directory.lock().expect("directory lock");
            for (idx, model) in models.iter().enumerate() {
                for placement in model.capture_state().placements() {
                    dir.insert(placement.vm, idx as u32);
                }
                let (alloc, cap) = model.totals();
                summaries[idx].refresh(model.opened_pms() as u64, alloc, cap);
            }
        }

        let lost: Arc<Mutex<Vec<VmId>>> = Arc::new(Mutex::new(Vec::new()));
        let mut workers = Vec::with_capacity(shards);
        for (idx, (rx, model)) in receivers.into_iter().zip(models).enumerate() {
            let worker = Worker {
                idx: idx as u32,
                rx,
                peers: senders.clone(),
                model,
                summaries: Arc::clone(&summaries),
                directory: Arc::clone(&directory),
                metrics: Arc::clone(&metrics),
                gauges: ShardGauges::for_shard(idx as u32),
                batch_max: config.batch_max,
                deterministic: config.deterministic,
                durable: durables[idx].take(),
                fail_stop: config.durable_fail_stop,
                lost: Arc::clone(&lost),
                draining: Default::default(),
                epoch,
                level: config.trace,
                sink: sink.clone(),
                slo: Arc::clone(&slo),
                slow: SlowOpsDigest::default(),
                heartbeat_every: (config.stall_threshold / 4).min(Duration::from_millis(250)),
                rebalance: config.rebalance.clone(),
                last_rebalance: epoch,
                pressure: config.pressure.clone(),
                last_pressure: epoch,
                usage: slackvm_pressure::UsageTracker::new(
                    slackvm_pressure::EstimatorConfig::default(),
                ),
                pressure_states: Default::default(),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("slackvm-shard-{idx}"))
                    .spawn(move || worker.run())
                    .map_err(ServeError::Io)?,
            );
        }

        let sampler = match (config.sample_interval_ms, series.as_ref()) {
            (Some(interval_ms), Some(store)) => {
                let stop = Arc::new(AtomicBool::new(false));
                let handle = Self::spawn_sampler(
                    interval_ms,
                    Arc::clone(store),
                    Arc::clone(&summaries),
                    Arc::clone(&stop),
                    epoch,
                )?;
                Some((handle, stop))
            }
            _ => None,
        };

        Ok(PlacementService {
            senders,
            summaries,
            directory,
            metrics,
            series,
            workers,
            sampler,
            seq: AtomicU64::new(0),
            config,
            epoch,
            recovery,
            slo,
            sink,
            lost,
        })
    }

    fn spawn_sampler(
        interval_ms: u64,
        store: Arc<Mutex<TimeSeriesStore>>,
        summaries: Arc<Vec<ShardSummary>>,
        stop: Arc<AtomicBool>,
        epoch: Instant,
    ) -> Result<JoinHandle<()>, ServeError> {
        std::thread::Builder::new()
            .name("slackvm-sampler".into())
            .spawn(move || {
                let interval = Duration::from_millis(interval_ms.max(1));
                loop {
                    // Sample first, sleep after: even a service stopped
                    // within one interval leaves a t=0 sample behind.
                    // The time column carries milliseconds since service
                    // start (not seconds): sampling is sub-second.
                    let t_ms = epoch.elapsed().as_millis() as u64;
                    let inflight: usize = summaries.iter().map(|s| s.queued()).sum();
                    let shed: u64 = summaries.iter().map(|s| s.shed()).sum();
                    let rebal_migrations: u64 =
                        summaries.iter().map(|s| s.rebalance_migrations()).sum();
                    let rebal_freed: u64 = summaries.iter().map(|s| s.rebalance_pms_freed()).sum();
                    let press_migrations: u64 =
                        summaries.iter().map(|s| s.pressure_migrations()).sum();
                    let press_hot: u64 = summaries.iter().map(|s| s.pressure_hot_pms()).sum();
                    let mut s = store.lock().expect("series lock");
                    s.record("serve.inflight", t_ms, inflight as f64);
                    s.record("serve.shed_total", t_ms, shed as f64);
                    s.record("rebalance.migrations", t_ms, rebal_migrations as f64);
                    s.record("rebalance.pms_freed", t_ms, rebal_freed as f64);
                    s.record("pressure.migrations", t_ms, press_migrations as f64);
                    s.record("pressure.hot_pms", t_ms, press_hot as f64);
                    for (idx, sum) in summaries.iter().enumerate() {
                        let cap = sum.capacity_cpu_millicores();
                        let util = if cap == 0 {
                            0.0
                        } else {
                            sum.used_cpu_millicores() as f64 / cap as f64
                        };
                        s.record(&format!("serve.shard{idx}.cpu_util"), t_ms, util);
                    }
                    drop(s);
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(interval);
                }
            })
            .map_err(ServeError::Io)
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Per-shard scoreboards (queue depth, utilization, counts).
    pub fn summaries(&self) -> &[ShardSummary] {
        &self.summaries
    }

    /// What startup recovery did, one report per shard — empty when
    /// the service is not durable.
    pub fn recovery_reports(&self) -> &[slackvm_durable::RecoveryReport] {
        &self.recovery
    }

    /// Instant the service started; reply latencies and series sample
    /// times are relative to it.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    fn route(&self, op: &Op) -> Result<u32, Outcome> {
        match op {
            // Least-loaded shard: shallowest queue, then least
            // allocated CPU, then lowest index. Reading relaxed atomics
            // keeps the router off every lock.
            Op::Place { .. } => {
                let mut best = 0u32;
                let mut best_key = (usize::MAX, u64::MAX);
                for (idx, s) in self.summaries.iter().enumerate() {
                    let key = (s.queued(), s.used_cpu_millicores());
                    if key < best_key {
                        best_key = key;
                        best = idx as u32;
                    }
                }
                Ok(best)
            }
            Op::Remove { id } | Op::Resize { id, .. } => self
                .directory
                .lock()
                .expect("directory lock")
                .get(id)
                .copied()
                .ok_or(Outcome::UnknownVm),
            // Control ops name their shard; a shard the service does
            // not run is refused at the front door.
            Op::FailPm { shard, .. } | Op::RecoverPm { shard, .. } | Op::DrainPm { shard, .. } => {
                if *shard < self.config.shards {
                    Ok(*shard)
                } else {
                    Err(Outcome::Rejected)
                }
            }
        }
    }

    fn make_request(&self, op: Op, reply: Sender<Reply>, door: Instant) -> (u64, Request) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let deadline = if self.config.deterministic {
            None
        } else {
            self.config.deadline.map(|d| now + d)
        };
        (
            seq,
            Request {
                seq,
                op,
                deadline,
                door,
                enqueued: now,
                trace: mint_trace(seq),
                tried: 0,
                evac: None,
                reply,
            },
        )
    }

    /// Front-door replies (e.g. `UnknownVm` for an undirected remove)
    /// never reach a worker; answer on the caller's channel directly.
    fn answer_front(&self, seq: u64, outcome: Outcome, reply: &Sender<Reply>) {
        let _ = reply.send(Reply {
            seq,
            shard: None,
            outcome,
            latency_us: 0,
            trace: mint_trace(seq),
            queue_us: 0,
            place_us: 0,
            commit_us: 0,
        });
        self.metrics.lock().expect("metrics lock").inc(
            match outcome {
                Outcome::UnknownVm => "serve.unknown_vm",
                _ => "serve.requests",
            },
            1,
        );
    }

    /// Submits an operation, blocking while the target shard's queue is
    /// full (backpressure). The reply arrives on `reply`; returns the
    /// sequence number that will tag it.
    pub fn submit_with(&self, op: Op, reply: Sender<Reply>) -> Result<u64, ServeError> {
        self.submit_with_from(op, reply, Instant::now())
    }

    /// [`Self::submit_with`] with an explicit door-accept instant — the
    /// moment the request crossed the service boundary (e.g. when its
    /// bytes finished arriving on a socket), so the `serve.door` trace
    /// stage covers parsing and routing, not just the queue hop.
    pub fn submit_with_from(
        &self,
        op: Op,
        reply: Sender<Reply>,
        door: Instant,
    ) -> Result<u64, ServeError> {
        match self.route(&op) {
            Ok(shard) => {
                let (seq, req) = self.make_request(op, reply, door);
                self.summaries[shard as usize].note_enqueued();
                match self.senders[shard as usize].send(Msg::Req(req)) {
                    Ok(()) => Ok(seq),
                    Err(_) => {
                        self.summaries[shard as usize].note_dequeued();
                        Err(ServeError::Disconnected)
                    }
                }
            }
            Err(outcome) => {
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                self.answer_front(seq, outcome, &reply);
                Ok(seq)
            }
        }
    }

    /// Non-blocking variant of [`Self::submit_with`]: a full queue
    /// returns [`ServeError::Busy`] instead of waiting — shedding at
    /// the door, counted under `serve.busy` and held against the SLO
    /// error budget.
    pub fn try_submit_with(&self, op: Op, reply: Sender<Reply>) -> Result<u64, ServeError> {
        self.try_submit_with_from(op, reply, Instant::now())
    }

    /// [`Self::try_submit_with`] with an explicit door-accept instant.
    pub fn try_submit_with_from(
        &self,
        op: Op,
        reply: Sender<Reply>,
        door: Instant,
    ) -> Result<u64, ServeError> {
        match self.route(&op) {
            Ok(shard) => {
                let (seq, req) = self.make_request(op, reply, door);
                self.summaries[shard as usize].note_enqueued();
                match self.senders[shard as usize].try_send(Msg::Req(req)) {
                    Ok(()) => Ok(seq),
                    Err(e) => {
                        self.summaries[shard as usize].note_dequeued();
                        self.metrics
                            .lock()
                            .expect("metrics lock")
                            .inc("serve.busy", 1);
                        self.slo
                            .lock()
                            .expect("slo lock")
                            .record(ms_since(self.epoch), 0, false);
                        match e {
                            TrySendError::Full(_) => Err(ServeError::Busy),
                            TrySendError::Disconnected(_) => Err(ServeError::Disconnected),
                        }
                    }
                }
            }
            Err(outcome) => {
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                self.answer_front(seq, outcome, &reply);
                Ok(seq)
            }
        }
    }

    /// Synchronous round trip: submit and wait for the reply.
    pub fn call(&self, op: Op) -> Result<Reply, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.submit_with(op, tx)?;
        rx.recv().map_err(|_| ServeError::Disconnected)
    }

    /// Synchronous round trip with an explicit door-accept instant.
    pub fn call_from(&self, op: Op, door: Instant) -> Result<Reply, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.submit_with_from(op, tx, door)?;
        rx.recv().map_err(|_| ServeError::Disconnected)
    }

    /// Closes a request's lifecycle from the transport: observes the
    /// reply-write stage (`serve.reply_us`) and, when the request was
    /// sampled, emits its `serve.reply` span on the request's track.
    /// Call after the reply's bytes have been written back.
    pub fn note_reply_write(&self, reply: &Reply, write_started: Instant) {
        if !self.config.trace.stages() {
            return;
        }
        let dur_us = write_started.elapsed().as_micros() as u64;
        self.metrics
            .lock()
            .expect("metrics lock")
            .observe("serve.reply_us", dur_us as f64);
        if let (Some(sink), Some(every)) = (&self.sink, self.config.trace.sample_every()) {
            if reply.seq % every == 0 && reply.trace != 0 {
                let start_us = write_started
                    .saturating_duration_since(self.epoch)
                    .as_micros() as u64;
                sink.lock().expect("trace sink lock").push_on(
                    reply.trace,
                    TraceSpan {
                        name: "serve.reply",
                        start_us,
                        dur_us,
                    },
                );
            }
        }
    }

    /// VMs lost to evacuation so far, by ID (empty while every
    /// displaced VM has been re-placed or is still in flight).
    pub fn lost_vms(&self) -> Vec<VmId> {
        self.lost.lock().expect("lost ledger lock").clone()
    }

    /// The rolling-window SLO scorecard as of now.
    pub fn slo_report(&self) -> SloReport {
        self.slo
            .lock()
            .expect("slo lock")
            .report(ms_since(self.epoch))
    }

    /// The sampled spans accumulated so far as Chrome trace-event JSON
    /// (`None` unless sampling is on). Cheap enough to call on a live
    /// service; `stop` returns the final cut.
    pub fn chrome_trace(&self) -> Option<String> {
        self.sink
            .as_ref()
            .map(|s| s.lock().expect("trace sink lock").to_chrome_json())
    }

    /// Test hook: wedge shard `shard`'s worker for `dur` (it sleeps
    /// without heartbeating, as a worker stuck in a pathological
    /// placement would), so the `/healthz` watchdog can be exercised.
    #[doc(hidden)]
    pub fn inject_stall(&self, shard: u32, dur: Duration) -> Result<(), ServeError> {
        self.senders
            .get(shard as usize)
            .ok_or_else(|| ServeError::Config(format!("no shard {shard}")))?
            .send(Msg::Stall(dur))
            .map_err(|_| ServeError::Disconnected)
    }

    /// Runs one rebalance tick on shard `shard` right now, bypassing
    /// the configured interval (the safety interlocks still apply),
    /// and blocks for its outcome. A worker started without
    /// [`ServeConfig::rebalance`](crate::request::ServeConfig) reports
    /// the tick skipped as disabled. Requests already queued ahead of
    /// the trigger may execute after the tick — the trigger is a
    /// consolidation nudge, not a barrier.
    pub fn trigger_rebalance(
        &self,
        shard: u32,
    ) -> Result<crate::shard::RebalanceTick, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.senders
            .get(shard as usize)
            .ok_or_else(|| ServeError::Config(format!("no shard {shard}")))?
            .send(Msg::Rebalance(tx))
            .map_err(|_| ServeError::Disconnected)?;
        rx.recv().map_err(|_| ServeError::Disconnected)
    }

    /// Runs one pressure (hotspot-mitigation) tick on shard `shard`
    /// right now, bypassing the configured interval (the safety
    /// interlocks still apply), and blocks for its outcome. A worker
    /// started without
    /// [`ServeConfig::pressure`](crate::request::ServeConfig) reports
    /// the tick skipped as disabled.
    pub fn trigger_pressure(&self, shard: u32) -> Result<crate::shard::PressureTick, ServeError> {
        let (tx, rx) = mpsc::channel();
        self.senders
            .get(shard as usize)
            .ok_or_else(|| ServeError::Config(format!("no shard {shard}")))?
            .send(Msg::Pressure(tx))
            .map_err(|_| ServeError::Disconnected)?;
        rx.recv().map_err(|_| ServeError::Disconnected)
    }

    /// Test hook: simulate a journal write failure on shard `shard`, so
    /// journal-degraded mode (or fail-stop) can be exercised without an
    /// actual disk fault.
    #[doc(hidden)]
    pub fn inject_journal_degraded(&self, shard: u32) -> Result<(), ServeError> {
        self.senders
            .get(shard as usize)
            .ok_or_else(|| ServeError::Config(format!("no shard {shard}")))?
            .send(Msg::DegradeJournal)
            .map_err(|_| ServeError::Disconnected)
    }

    /// Renders the Prometheus exposition (metrics plus, when sampling
    /// is on, the time series gauges).
    pub fn metrics_exposition(&self) -> String {
        let m = self.metrics.lock().expect("metrics lock");
        match self.series.as_ref() {
            Some(store) => {
                let s = store.lock().expect("series lock");
                prometheus::render(&m, Some(&s))
            }
            None => prometheus::render(&m, None),
        }
    }

    /// The sampled time series as CSV (`None` when sampling is off).
    pub fn series_csv(&self) -> Option<String> {
        self.series
            .as_ref()
            .map(|s| s.lock().expect("series lock").to_csv())
    }

    /// Graceful shutdown: stops the sampler, tells every worker to
    /// drain and exit, and joins them. Call once the caller has
    /// received every reply it still cares about — requests in flight
    /// are still answered, but nothing may be submitted afterwards.
    pub fn stop(self) -> ServiceReport {
        if let Some((handle, stop)) = self.sampler {
            stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
        }
        for tx in &self.senders {
            // Workers are alive and draining, so a blocking send of the
            // stop marker cannot wedge.
            let _ = tx.send(Msg::Stop);
        }
        drop(self.senders);
        let shards: Vec<ShardReport> = self
            .workers
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
        // Render after the joins: every sampled span is in the sink.
        let trace_json = self
            .sink
            .as_ref()
            .map(|s| s.lock().expect("trace sink lock").to_chrome_json());
        let lost_vms = self.lost.lock().expect("lost ledger lock").clone();
        ServiceReport {
            shards,
            trace_json,
            lost_vms,
        }
    }

    /// A detached handle for the background observability listener:
    /// shared views of the metrics registry, time series, per-shard
    /// scoreboards, and SLO window, valid for the service's lifetime.
    pub fn obs_handle(&self) -> crate::obs::ObsHandle {
        crate::obs::ObsHandle {
            metrics: Arc::clone(&self.metrics),
            series: self.series.as_ref().map(Arc::clone),
            summaries: Arc::clone(&self.summaries),
            slo: Arc::clone(&self.slo),
            epoch: self.epoch,
            stall_threshold: self.config.stall_threshold,
            lost: Arc::clone(&self.lost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelSpec;
    use slackvm_model::{gib, OversubLevel, VmId, VmSpec};

    fn small_config(shards: u32) -> ServeConfig {
        ServeConfig {
            shards,
            model: ModelSpec::Shared {
                topology: "cores=8".into(),
                mem_mib: gib(32),
                policy: "first-fit".into(),
                fleet_cap: None,
            },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn place_remove_round_trip_on_one_shard() {
        let svc = PlacementService::start(small_config(1)).unwrap();
        let reply = svc
            .call(Op::Place {
                id: VmId(1),
                spec: VmSpec::of(4, gib(8), OversubLevel::of(3)),
            })
            .unwrap();
        let pm = match reply.outcome {
            Outcome::Placed(pm) => pm,
            other => panic!("expected placement, got {other:?}"),
        };
        let reply = svc.call(Op::Remove { id: VmId(1) }).unwrap();
        assert_eq!(reply.outcome, Outcome::Removed(pm));
        let report = svc.stop();
        assert_eq!(report.admitted(), 1);
        report.check_invariants().unwrap();
    }

    #[test]
    fn unknown_vm_is_answered_at_the_front_door() {
        let svc = PlacementService::start(small_config(2)).unwrap();
        let reply = svc.call(Op::Remove { id: VmId(99) }).unwrap();
        assert_eq!(reply.outcome, Outcome::UnknownVm);
        assert_eq!(reply.shard, None);
        let reply = svc
            .call(Op::Resize {
                id: VmId(99),
                vcpus: 2,
                mem_mib: gib(4),
            })
            .unwrap();
        assert_eq!(reply.outcome, Outcome::UnknownVm);
        svc.stop();
    }

    #[test]
    fn remove_routes_to_the_owning_shard() {
        let svc = PlacementService::start(small_config(4)).unwrap();
        for i in 0..16u64 {
            let reply = svc
                .call(Op::Place {
                    id: VmId(i),
                    spec: VmSpec::of(2, gib(4), OversubLevel::of(2)),
                })
                .unwrap();
            assert!(matches!(reply.outcome, Outcome::Placed(_)), "{reply:?}");
        }
        for i in 0..16u64 {
            let reply = svc.call(Op::Remove { id: VmId(i) }).unwrap();
            assert!(matches!(reply.outcome, Outcome::Removed(_)), "{reply:?}");
        }
        let report = svc.stop();
        assert_eq!(report.admitted(), 16);
        for shard in &report.shards {
            let (alloc, _) = shard.model.totals();
            assert!(alloc.is_empty(), "shard {} not drained", shard.shard);
        }
        report.check_invariants().unwrap();
    }

    #[test]
    fn capped_fleet_rejects_after_fall_through() {
        let mut config = small_config(2);
        config.model = ModelSpec::Shared {
            topology: "cores=2".into(),
            mem_mib: gib(4),
            policy: "first-fit".into(),
            fleet_cap: Some(2),
        };
        let svc = PlacementService::start(config).unwrap();
        // Each shard caps at ceil(2/2) = 1 PM of 2 cores / 4 GiB at
        // level 1 => fleet absorbs at most 2 such VMs, third rejected
        // after trying both shards.
        let mut placed = 0;
        let mut rejected = 0;
        for i in 0..3u64 {
            let reply = svc
                .call(Op::Place {
                    id: VmId(i),
                    spec: VmSpec::of(2, gib(4), OversubLevel::of(1)),
                })
                .unwrap();
            match reply.outcome {
                Outcome::Placed(_) => placed += 1,
                Outcome::Rejected => rejected += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!((placed, rejected), (2, 1));
        let report = svc.stop();
        report.check_invariants().unwrap();
    }

    #[test]
    fn durable_service_recovers_after_restart() {
        use slackvm_durable::{DurableOptions, FsyncPolicy};
        let dir =
            std::env::temp_dir().join(format!("slackvm-serve-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            durable: Some(DurableOptions {
                fsync: FsyncPolicy::Every,
                ..DurableOptions::new(&dir)
            }),
            ..small_config(2)
        };

        let svc = PlacementService::start(config.clone()).unwrap();
        assert!(svc.recovery_reports().iter().all(|r| r.last_seq == 0));
        for i in 0..8u64 {
            let reply = svc
                .call(Op::Place {
                    id: VmId(i),
                    spec: VmSpec::of(2, gib(4), OversubLevel::of(2)),
                })
                .unwrap();
            assert!(matches!(reply.outcome, Outcome::Placed(_)), "{reply:?}");
        }
        svc.call(Op::Remove { id: VmId(3) }).unwrap();
        let first = svc.stop();
        first.check_invariants().unwrap();

        // Restart against the same directory: state comes back, the
        // directory routes a remove for a recovered VM, and a manifest
        // mismatch is refused.
        let svc = PlacementService::start(config.clone()).unwrap();
        let replayed: u64 = svc
            .recovery_reports()
            .iter()
            .map(|r| r.records_replayed)
            .sum();
        assert_eq!(replayed, 0, "clean shutdown snapshots leave no tail");
        let reply = svc.call(Op::Remove { id: VmId(5) }).unwrap();
        assert!(matches!(reply.outcome, Outcome::Removed(_)), "{reply:?}");
        let second = svc.stop();
        second.check_invariants().unwrap();
        assert_eq!(
            second.admitted(),
            0,
            "recovered placements are not re-admissions"
        );
        let total_vms: usize = second
            .shards
            .iter()
            .map(|s| s.model.capture_state().num_vms())
            .sum();
        assert_eq!(total_vms, 6, "8 placed, 2 removed across both runs");

        let mut mismatched = config;
        mismatched.shards = 4;
        let err = match PlacementService::start(mismatched) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("manifest mismatch accepted"),
        };
        assert!(err.contains("different service shape"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebalance_tick_consolidates_a_fragmented_shard() {
        use crate::request::RebalanceOptions;
        use slackvm_model::PmId;
        let config = ServeConfig {
            rebalance: Some(RebalanceOptions {
                // Effectively never on its own: only explicit triggers.
                every: Duration::from_secs(3600),
                ..RebalanceOptions::default()
            }),
            ..small_config(1)
        };
        let svc = PlacementService::start(config).unwrap();
        let place = |id: u64, vcpus: u32, mem_gib: u64| {
            svc.call(Op::Place {
                id: VmId(id),
                spec: VmSpec::of(vcpus, gib(mem_gib), OversubLevel::of(1)),
            })
            .unwrap()
            .outcome
        };
        // pm0 fills, VM1 opens pm1, VM0 leaves, VM2 lands first-fit on
        // the now nearly-empty pm0: classic fragmentation.
        assert!(matches!(place(0, 6, 24), Outcome::Placed(_)));
        assert!(matches!(place(1, 6, 24), Outcome::Placed(_)));
        assert_eq!(
            svc.call(Op::Remove { id: VmId(0) }).unwrap().outcome,
            Outcome::Removed(PmId(0))
        );
        assert!(matches!(place(2, 2, 8), Outcome::Placed(_)));

        let tick = svc.trigger_rebalance(0).unwrap();
        assert_eq!(tick.skipped, None);
        assert_eq!(tick.migrations, 1);
        assert_eq!(tick.pms_freed, 1);
        assert_eq!(tick.deferred, 0);
        assert_eq!(svc.summaries()[0].rebalance_migrations(), 1);
        assert_eq!(svc.summaries()[0].rebalance_pms_freed(), 1);
        let text = svc.metrics_exposition();
        assert!(text.contains("slackvm_rebalance_migrations 1"), "{text}");
        assert!(text.contains("slackvm_rebalance_plans 1"), "{text}");

        // The migrated VM is still routable: it moved PMs, not shards.
        assert_eq!(
            svc.call(Op::Remove { id: VmId(2) }).unwrap().outcome,
            Outcome::Removed(PmId(1))
        );
        let report = svc.stop();
        report.check_invariants().unwrap();
    }

    #[test]
    fn rebalance_tick_honors_its_interlocks() {
        use crate::request::RebalanceOptions;
        use crate::shard::RebalanceSkip;
        use slackvm_model::PmId;
        // No rebalance configured: the trigger reports it disabled.
        let svc = PlacementService::start(small_config(1)).unwrap();
        let tick = svc.trigger_rebalance(0).unwrap();
        assert_eq!(tick.skipped, Some(RebalanceSkip::Disabled));
        svc.stop();

        let config = ServeConfig {
            rebalance: Some(RebalanceOptions {
                every: Duration::from_secs(3600),
                ..RebalanceOptions::default()
            }),
            ..small_config(1)
        };
        let svc = PlacementService::start(config).unwrap();
        svc.call(Op::Place {
            id: VmId(0),
            spec: VmSpec::of(2, gib(4), OversubLevel::of(1)),
        })
        .unwrap();
        svc.call(Op::DrainPm {
            shard: 0,
            pm: PmId(0),
        })
        .unwrap();
        let tick = svc.trigger_rebalance(0).unwrap();
        assert_eq!(tick.skipped, Some(RebalanceSkip::Draining));
        svc.call(Op::RecoverPm {
            shard: 0,
            pm: PmId(0),
        })
        .unwrap();
        let tick = svc.trigger_rebalance(0).unwrap();
        assert_eq!(tick.skipped, None, "recovering the PM resumes ticks");
        svc.stop();
    }

    #[test]
    fn pressure_tick_spreads_a_hotspot_onto_a_cold_pm() {
        use crate::request::PressureOptions;
        use slackvm_model::PmId;
        let config = ServeConfig {
            pressure: Some(PressureOptions {
                // Only explicit triggers, and every VM runs hot.
                every: Duration::from_secs(3600),
                hot_frac: 1.0,
                ..PressureOptions::default()
            }),
            ..small_config(1)
        };
        let svc = PlacementService::start(config).unwrap();
        let place = |id: u64, vcpus: u32| {
            svc.call(Op::Place {
                id: VmId(id),
                spec: VmSpec::of(vcpus, gib(8), OversubLevel::of(1)),
            })
            .unwrap()
            .outcome
        };
        // Two 4-core VMs fill pm0's 8 cores; a third opens pm1 and
        // departs, leaving an empty opened PM — the cold destination.
        assert!(matches!(place(0, 4), Outcome::Placed(_)));
        assert!(matches!(place(1, 4), Outcome::Placed(_)));
        assert!(matches!(place(2, 4), Outcome::Placed(_)));
        assert_eq!(
            svc.call(Op::Remove { id: VmId(2) }).unwrap().outcome,
            Outcome::Removed(PmId(1))
        );

        // With hot_frac 1.0 both VMs synthesize ~0.8-0.98 usage, so pm0
        // scores hot; moving one 4-core VM to pm1 cools both sides.
        let tick = svc.trigger_pressure(0).unwrap();
        assert_eq!(tick.skipped, None);
        assert_eq!(tick.hot_pms, 1, "{tick:?}");
        assert_eq!(tick.migrations, 1, "{tick:?}");
        assert_eq!(tick.deferred, 0);
        assert_eq!(svc.summaries()[0].pressure_migrations(), 1);
        let text = svc.metrics_exposition();
        assert!(text.contains("slackvm_pressure_migrations 1"), "{text}");
        assert!(text.contains("slackvm_pressure_plans 1"), "{text}");

        // A second tick finds nothing left to spread.
        let tick = svc.trigger_pressure(0).unwrap();
        assert_eq!(tick.skipped, None);
        assert_eq!(tick.migrations, 0, "{tick:?}");

        // Both VMs remain routable after the move.
        for id in [0u64, 1] {
            assert!(matches!(
                svc.call(Op::Remove { id: VmId(id) }).unwrap().outcome,
                Outcome::Removed(_)
            ));
        }
        let report = svc.stop();
        report.check_invariants().unwrap();
    }

    #[test]
    fn pressure_tick_honors_its_interlocks() {
        use crate::request::PressureOptions;
        use crate::shard::PressureSkip;
        use slackvm_model::PmId;
        // No pressure plane configured: the trigger reports it disabled.
        let svc = PlacementService::start(small_config(1)).unwrap();
        let tick = svc.trigger_pressure(0).unwrap();
        assert_eq!(tick.skipped, Some(PressureSkip::Disabled));
        svc.stop();

        let config = ServeConfig {
            pressure: Some(PressureOptions {
                every: Duration::from_secs(3600),
                ..PressureOptions::default()
            }),
            ..small_config(1)
        };
        let svc = PlacementService::start(config).unwrap();
        svc.call(Op::Place {
            id: VmId(0),
            spec: VmSpec::of(2, gib(4), OversubLevel::of(1)),
        })
        .unwrap();
        svc.call(Op::DrainPm {
            shard: 0,
            pm: PmId(0),
        })
        .unwrap();
        let tick = svc.trigger_pressure(0).unwrap();
        assert_eq!(tick.skipped, Some(PressureSkip::Draining));
        svc.call(Op::RecoverPm {
            shard: 0,
            pm: PmId(0),
        })
        .unwrap();
        let tick = svc.trigger_pressure(0).unwrap();
        assert_eq!(tick.skipped, None, "recovering the PM resumes ticks");
        svc.stop();
    }

    #[test]
    fn exposition_carries_serve_counters_and_validates() {
        let svc = PlacementService::start(small_config(1)).unwrap();
        svc.call(Op::Place {
            id: VmId(7),
            spec: VmSpec::of(2, gib(4), OversubLevel::of(2)),
        })
        .unwrap();
        let text = svc.metrics_exposition();
        prometheus::validate(&text).unwrap();
        assert!(text.contains("slackvm_serve_admitted"), "{text}");
        assert!(text.contains("slackvm_build_info{"), "{text}");
        svc.stop();
    }
}
