//! The bombard load generator: workload scenarios as live traffic.
//!
//! Replays the VM shapes of a canned workload scenario
//! ([`slackvm_workload::scenarios`]) against a placement service as
//! fast as the service allows (closed loop) or at a fixed request rate
//! (open loop), in-process or over the TCP frontend, and reports
//! throughput plus tail latency ([`slackvm_perf::TailPercentiles`]).
//!
//! Closed loop: `clients` threads each keep a sliding window of
//! `population / clients` live VMs — every placement beyond the window
//! first removes the oldest — so the service sees the scenario's
//! steady-state occupancy, not unbounded growth. Latency is measured
//! client-side around each synchronous call.
//!
//! Open loop: a single pacer submits placements at `rate` requests per
//! second through the non-blocking path; a full queue counts as `busy`
//! (shed at the door) instead of slowing the pacer — the textbook
//! open-loop overload model.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use slackvm_model::{PmId, VmId, VmSpec};
use slackvm_perf::TailPercentiles;
use slackvm_workload::{scenarios, WorkloadEvent};

use crate::error::ServeError;
use crate::request::{Op, Outcome, Reply};
use crate::service::PlacementService;
use crate::wire::WireReply;

/// Load-generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BombardConfig {
    /// Canned scenario name (see [`scenarios::SCENARIO_NAMES`]).
    pub scenario: String,
    /// Scenario population — also the closed-loop live-VM window.
    pub population: u32,
    /// Workload generation seed.
    pub seed: u64,
    /// Concurrent closed-loop clients.
    pub clients: u32,
    /// Total placement requests across all clients.
    pub requests: u64,
    /// Chaos mode: every `N` of client 0's placements, interleave a
    /// deterministic `fail-pm` or `recover-pm` control op. `None`
    /// disables chaos.
    pub chaos_fail_every: Option<u64>,
    /// Fraction of placed VMs pinned in place for the whole run
    /// (never removed by the sliding window, drained only at the end).
    /// The pinned set is exactly the VMs [`slackvm_pressure::is_hot`]
    /// marks hot for `usage_seed`, so a server running the pressure
    /// plane with the same seed sees its hot VMs accumulate into
    /// hotspots instead of churning away. `0.0` disables pinning.
    pub hot_frac: f64,
    /// Seed for the hot-VM draw — pass the server's
    /// `--pressure-usage-seed` so client pinning and server usage
    /// synthesis agree on which VMs are hot.
    pub usage_seed: u64,
}

impl Default for BombardConfig {
    fn default() -> Self {
        BombardConfig {
            scenario: "paper-week-f".into(),
            population: 200,
            seed: 42,
            clients: 4,
            requests: 10_000,
            chaos_fail_every: None,
            hot_frac: 0.0,
            usage_seed: 42,
        }
    }
}

impl BombardConfig {
    /// Rejects parameter combinations that break the generator's
    /// invariants — per-client request counts that would spill one
    /// client's VM ids into the next client's billion-wide band.
    pub fn validate(&self) -> Result<(), ServeError> {
        let clients = self.clients.max(1);
        let per_client = self.requests / clients as u64;
        if clients > 1 && per_client > CLIENT_ID_BAND {
            return Err(ServeError::Config(format!(
                "requests/clients = {per_client} exceeds the {CLIENT_ID_BAND}-wide \
                 per-client VM-id band: client ids would collide"
            )));
        }
        if self.chaos_fail_every == Some(0) {
            return Err(ServeError::Config(
                "chaos-fail-every must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.hot_frac) {
            return Err(ServeError::Config(
                "hot-frac must be within [0, 1]".into(),
            ));
        }
        Ok(())
    }

    /// The VM shapes the generator cycles through: every arrival spec
    /// of the scenario's workload, in trace order.
    pub fn specs(&self) -> Result<Vec<VmSpec>, ServeError> {
        let scenario = scenarios::by_name(&self.scenario, self.population).ok_or_else(|| {
            ServeError::Config(format!(
                "unknown scenario {:?} ({})",
                self.scenario,
                scenarios::SCENARIO_NAMES.join(", ")
            ))
        })?;
        let workload = scenario.generate(self.seed);
        let specs: Vec<VmSpec> = workload
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                WorkloadEvent::Arrival(vm) => Some(vm.spec),
                _ => None,
            })
            .collect();
        if specs.is_empty() {
            return Err(ServeError::Config(format!(
                "scenario {:?} generated no arrivals",
                self.scenario
            )));
        }
        Ok(specs)
    }
}

/// What a bombard run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct BombardReport {
    /// `"closed-loop"`, `"open-loop"`, or `"closed-loop/tcp"`.
    pub mode: String,
    /// Operations executed (placements plus window removals).
    pub ops: u64,
    /// Wall-clock duration of the run.
    pub wall_secs: f64,
    /// `ops / wall_secs`.
    pub throughput: f64,
    /// Placements admitted.
    pub placed: u64,
    /// Placements rejected.
    pub rejected: u64,
    /// Requests shed past deadline.
    pub shed: u64,
    /// Open-loop submissions refused at the door (queue full).
    pub busy: u64,
    /// Unknown-VM answers.
    pub unknown: u64,
    /// Window removals executed.
    pub removed: u64,
    /// Chaos control ops issued (`fail-pm` + `recover-pm`).
    pub chaos_ops: u64,
    /// VMs evicted by chaos-injected PM failures.
    pub evicted: u64,
    /// Evicted VMs the service could not re-place anywhere (lost).
    pub lost: u64,
    /// Placement latency distribution, microseconds (client-observed in
    /// closed loop, worker-observed in open loop). `None` when nothing
    /// completed.
    pub latency: Option<TailPercentiles>,
    /// Server-reported per-stage breakdown of the same requests, from
    /// the stage fields replies carry when the service runs staged
    /// tracing. Empty under `TraceLevel::Off`.
    pub stages: StageBreakdown,
}

/// Server-side stage latencies of the bombarded requests: where the
/// client-observed latency was actually spent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageBreakdown {
    /// Queue-wait stage (enqueue → dequeue).
    pub queue: Option<TailPercentiles>,
    /// Placement stage (dequeue → decision).
    pub place: Option<TailPercentiles>,
    /// WAL-commit stage (zero-duration when the service is in-memory).
    pub commit: Option<TailPercentiles>,
}

impl StageBreakdown {
    /// Whether any stage was reported.
    pub fn is_empty(&self) -> bool {
        self.queue.is_none() && self.place.is_none() && self.commit.is_none()
    }
}

/// Per-client accumulator of server-reported stage samples.
#[derive(Default)]
struct StageSamples {
    queue: Vec<f64>,
    place: Vec<f64>,
    commit: Vec<f64>,
}

impl StageSamples {
    fn note_reply(&mut self, reply: &Reply) {
        self.queue.push(reply.queue_us as f64);
        self.place.push(reply.place_us as f64);
        self.commit.push(reply.commit_us as f64);
    }

    fn note_wire(&mut self, reply: &WireReply) {
        if let Some(us) = reply.queue_us {
            self.queue.push(us as f64);
        }
        if let Some(us) = reply.place_us {
            self.place.push(us as f64);
        }
        if let Some(us) = reply.commit_us {
            self.commit.push(us as f64);
        }
    }

    fn absorb(&mut self, other: StageSamples) {
        self.queue.extend(other.queue);
        self.place.extend(other.place);
        self.commit.extend(other.commit);
    }

    fn breakdown(&self) -> StageBreakdown {
        StageBreakdown {
            queue: TailPercentiles::of(&self.queue),
            place: TailPercentiles::of(&self.place),
            commit: TailPercentiles::of(&self.commit),
        }
    }
}

impl BombardReport {
    /// Renders the human-readable summary block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("bombard ({})\n", self.mode));
        out.push_str(&format!(
            "  ops        {} in {:.3} s  ({:.0} ops/s)\n",
            self.ops, self.wall_secs, self.throughput
        ));
        out.push_str(&format!(
            "  outcomes   placed {}  rejected {}  shed {}  busy {}  unknown {}  removed {}\n",
            self.placed, self.rejected, self.shed, self.busy, self.unknown, self.removed
        ));
        if self.chaos_ops > 0 {
            out.push_str(&format!(
                "  chaos      ops {}  evicted {}  lost {}\n",
                self.chaos_ops, self.evicted, self.lost
            ));
        }
        match &self.latency {
            Some(p) => out.push_str(&format!(
                "  latency    p50 {:.0} us  p99 {:.0} us  p999 {:.0} us  max {:.0} us  (n={})\n",
                p.p50, p.p99, p.p999, p.max, p.count
            )),
            None => out.push_str("  latency    (no completed placements)\n"),
        }
        if !self.stages.is_empty() {
            let cell = |p: &Option<TailPercentiles>| match p {
                Some(p) => format!("p50 {:.0}/p99 {:.0} us", p.p50, p.p99),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "  server     queue {}  place {}  commit {}\n",
                cell(&self.stages.queue),
                cell(&self.stages.place),
                cell(&self.stages.commit)
            ));
        }
        out
    }
}

#[derive(Default)]
struct Tally {
    placed: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    busy: AtomicU64,
    unknown: AtomicU64,
    removed: AtomicU64,
    chaos_ops: AtomicU64,
    evicted: AtomicU64,
    lost: AtomicU64,
}

impl Tally {
    fn note(&self, outcome: Outcome) {
        match outcome {
            Outcome::Placed(_) => self.placed.fetch_add(1, Ordering::Relaxed),
            Outcome::Rejected => self.rejected.fetch_add(1, Ordering::Relaxed),
            Outcome::Shed => self.shed.fetch_add(1, Ordering::Relaxed),
            Outcome::UnknownVm => self.unknown.fetch_add(1, Ordering::Relaxed),
            Outcome::Removed(_) => self.removed.fetch_add(1, Ordering::Relaxed),
            Outcome::Resized { .. } => 0,
            Outcome::PmFailed { evicted, lost, .. } | Outcome::PmDraining { evicted, lost, .. } => {
                self.evicted.fetch_add(evicted as u64, Ordering::Relaxed);
                self.lost.fetch_add(lost as u64, Ordering::Relaxed);
                self.chaos_ops.fetch_add(1, Ordering::Relaxed)
            }
            Outcome::PmRecovered => self.chaos_ops.fetch_add(1, Ordering::Relaxed),
        };
    }
}

fn report(
    mode: &str,
    ops: u64,
    wall: Duration,
    tally: &Tally,
    latencies: &[f64],
    stages: &StageSamples,
) -> BombardReport {
    let wall_secs = wall.as_secs_f64().max(1e-9);
    BombardReport {
        mode: mode.into(),
        ops,
        wall_secs,
        throughput: ops as f64 / wall_secs,
        placed: tally.placed.load(Ordering::Relaxed),
        rejected: tally.rejected.load(Ordering::Relaxed),
        shed: tally.shed.load(Ordering::Relaxed),
        busy: tally.busy.load(Ordering::Relaxed),
        unknown: tally.unknown.load(Ordering::Relaxed),
        removed: tally.removed.load(Ordering::Relaxed),
        chaos_ops: tally.chaos_ops.load(Ordering::Relaxed),
        evicted: tally.evicted.load(Ordering::Relaxed),
        lost: tally.lost.load(Ordering::Relaxed),
        latency: TailPercentiles::of(latencies),
        stages: stages.breakdown(),
    }
}

/// Width of each client's private VM-id band.
const CLIENT_ID_BAND: u64 = 1_000_000_000;

/// Each client's VM ids live in a disjoint billion-wide band so clients
/// can never collide ([`BombardConfig::validate`] enforces the width).
fn client_vm_id(client: u32, n: u64) -> VmId {
    VmId(client as u64 * CLIENT_ID_BAND + n)
}

/// Deterministic chaos driver: client 0 interleaves one `fail-pm` or
/// `recover-pm` control op every `every` of its own placements. Targets
/// are drawn from a splitmix of the workload seed, at most two PMs are
/// down at any moment (the oldest is recovered first), and every PM
/// still down when the client finishes is recovered so the run ends on
/// a healthy fleet.
struct Chaos {
    every: u64,
    shards: u32,
    state: u64,
    down: VecDeque<(u32, u32)>,
}

impl Chaos {
    fn new(config: &BombardConfig, shards: u32) -> Option<Chaos> {
        let every = config.chaos_fail_every.filter(|&n| n > 0)?;
        Some(Chaos {
            every,
            shards: shards.max(1),
            state: config.seed | 1,
            down: VecDeque::new(),
        })
    }

    fn splitmix(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The control op due after client 0's `n`-th placement, if any.
    fn tick(&mut self, n: u64) -> Option<Op> {
        if (n + 1) % self.every != 0 {
            return None;
        }
        if self.down.len() >= 2 {
            return self.recover_oldest();
        }
        let draw = self.splitmix();
        let shard = (draw % self.shards as u64) as u32;
        // Low PM ids are the ones a loaded shard has certainly opened.
        let pm = ((draw >> 32) % 4) as u32;
        if self.down.contains(&(shard, pm)) {
            return self.recover_oldest();
        }
        self.down.push_back((shard, pm));
        Some(Op::FailPm { shard, pm: PmId(pm) })
    }

    fn recover_oldest(&mut self) -> Option<Op> {
        let (shard, pm) = self.down.pop_front()?;
        Some(Op::RecoverPm {
            shard,
            pm: PmId(pm),
        })
    }

    /// Recover-ops for every PM still down.
    fn drain(&mut self) -> Vec<Op> {
        std::iter::from_fn(|| self.recover_oldest()).collect()
    }
}

/// Renders a chaos control op as a wire-protocol request line.
fn chaos_wire_line(op: &Op) -> String {
    match op {
        Op::FailPm { shard, pm } => {
            format!("{{\"op\":\"fail-pm\",\"shard\":{shard},\"pm\":{}}}", pm.0)
        }
        Op::RecoverPm { shard, pm } => {
            format!("{{\"op\":\"recover-pm\",\"shard\":{shard},\"pm\":{}}}", pm.0)
        }
        _ => unreachable!("chaos issues only pm control ops"),
    }
}

/// Closed-loop, in-process: see the module docs.
pub fn run_closed_loop(
    service: &PlacementService,
    config: &BombardConfig,
) -> Result<BombardReport, ServeError> {
    config.validate()?;
    let specs = config.specs()?;
    let clients = config.clients.max(1);
    let window = (config.population / clients).max(1) as usize;
    let per_client = config.requests / clients as u64;
    let shards = service.config().shards;
    let tally = Tally::default();
    let ops = AtomicU64::new(0);
    let staged = service.config().trace.stages();
    let started = Instant::now();
    let mut all_latencies: Vec<f64> = Vec::new();
    let mut all_stages = StageSamples::default();

    std::thread::scope(|scope| -> Result<(), ServeError> {
        let mut handles = Vec::new();
        for client in 0..clients {
            let specs = &specs;
            let tally = &tally;
            let ops = &ops;
            handles.push(
                scope.spawn(move || -> Result<(Vec<f64>, StageSamples), ServeError> {
                    let mut alive: VecDeque<VmId> = VecDeque::with_capacity(window + 1);
                    let mut pinned: Vec<VmId> = Vec::new();
                    let mut latencies = Vec::with_capacity(per_client as usize);
                    let mut stages = StageSamples::default();
                    // Client 0 doubles as the chaos injector.
                    let mut chaos = (client == 0)
                        .then(|| Chaos::new(config, shards))
                        .flatten();
                    // Clients start at staggered offsets of the trace so the
                    // fleet sees the scenario's mix, not one slice of it.
                    let offset = (client as usize * specs.len()) / clients as usize;
                    for n in 0..per_client {
                        let spec = specs[(offset + n as usize) % specs.len()];
                        let id = client_vm_id(client, n);
                        let t0 = Instant::now();
                        let reply = service.call(Op::Place { id, spec })?;
                        latencies.push(t0.elapsed().as_micros() as f64);
                        if staged {
                            stages.note_reply(&reply);
                        }
                        ops.fetch_add(1, Ordering::Relaxed);
                        tally.note(reply.outcome);
                        if matches!(reply.outcome, Outcome::Placed(_)) {
                            // Hot VMs sit out the sliding window: they stay
                            // placed for the whole run, accumulating into the
                            // hotspots the server's pressure plane hunts.
                            if slackvm_pressure::is_hot(config.usage_seed, id, config.hot_frac) {
                                pinned.push(id);
                            } else {
                                alive.push_back(id);
                            }
                        }
                        if alive.len() > window {
                            let oldest = alive.pop_front().expect("window > 0");
                            let reply = service.call(Op::Remove { id: oldest })?;
                            ops.fetch_add(1, Ordering::Relaxed);
                            tally.note(reply.outcome);
                        }
                        if let Some(chaos) = chaos.as_mut() {
                            if let Some(op) = chaos.tick(n) {
                                let reply = service.call(op)?;
                                ops.fetch_add(1, Ordering::Relaxed);
                                tally.note(reply.outcome);
                            }
                        }
                    }
                    // Recover every PM chaos still has down, then drain the
                    // window, so the run ends on a healthy, empty fleet.
                    for op in chaos.as_mut().map(Chaos::drain).unwrap_or_default() {
                        let reply = service.call(op)?;
                        ops.fetch_add(1, Ordering::Relaxed);
                        tally.note(reply.outcome);
                    }
                    for id in alive.into_iter().chain(pinned) {
                        let reply = service.call(Op::Remove { id })?;
                        ops.fetch_add(1, Ordering::Relaxed);
                        tally.note(reply.outcome);
                    }
                    Ok((latencies, stages))
                }),
            );
        }
        for handle in handles {
            let (latencies, stages) = handle.join().expect("bombard client panicked")?;
            all_latencies.extend(latencies);
            all_stages.absorb(stages);
        }
        Ok(())
    })?;

    Ok(report(
        "closed-loop",
        ops.load(Ordering::Relaxed),
        started.elapsed(),
        &tally,
        &all_latencies,
        &all_stages,
    ))
}

/// Open-loop, in-process: paced submission at `rate` placements per
/// second through [`PlacementService::try_submit_with`]; a full queue
/// counts as `busy`. Latencies are the worker-observed queueing plus
/// service times.
pub fn run_open_loop(
    service: &PlacementService,
    config: &BombardConfig,
    rate: f64,
) -> Result<BombardReport, ServeError> {
    if rate.is_nan() || rate <= 0.0 {
        return Err(ServeError::Config("open-loop rate must be positive".into()));
    }
    config.validate()?;
    let specs = config.specs()?;
    let interval = Duration::from_secs_f64(1.0 / rate);
    let tally = Tally::default();
    let (reply_tx, reply_rx) = mpsc::channel();
    let started = Instant::now();
    let mut submitted = 0u64;
    for n in 0..config.requests {
        let due = started + interval.mul_f64(n as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let op = Op::Place {
            id: client_vm_id(0, n),
            spec: specs[n as usize % specs.len()],
        };
        match service.try_submit_with(op, reply_tx.clone()) {
            Ok(_) => submitted += 1,
            Err(ServeError::Busy) => {
                tally.busy.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => return Err(e),
        }
    }
    drop(reply_tx);
    let staged = service.config().trace.stages();
    let mut latencies = Vec::with_capacity(submitted as usize);
    let mut stages = StageSamples::default();
    for _ in 0..submitted {
        let reply = reply_rx.recv().map_err(|_| ServeError::Disconnected)?;
        tally.note(reply.outcome);
        latencies.push(reply.latency_us as f64);
        if staged {
            stages.note_reply(&reply);
        }
    }
    Ok(report(
        "open-loop",
        submitted,
        started.elapsed(),
        &tally,
        &latencies,
        &stages,
    ))
}

/// Closed-loop over the TCP frontend: like [`run_closed_loop`], but
/// each client drives its own connection with wire-protocol lines.
pub fn run_tcp(addr: &str, config: &BombardConfig) -> Result<BombardReport, ServeError> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    config.validate()?;
    let specs = config.specs()?;
    let clients = config.clients.max(1);
    let window = (config.population / clients).max(1) as usize;
    let per_client = config.requests / clients as u64;
    let tally = Tally::default();
    let ops = AtomicU64::new(0);
    let started = Instant::now();
    let mut all_latencies: Vec<f64> = Vec::new();
    let mut all_stages = StageSamples::default();

    std::thread::scope(|scope| -> Result<(), ServeError> {
        let mut handles = Vec::new();
        for client in 0..clients {
            let specs = &specs;
            let tally = &tally;
            let ops = &ops;
            let addr = addr.to_string();
            handles.push(
                scope.spawn(move || -> Result<(Vec<f64>, StageSamples), ServeError> {
                    let stream = TcpStream::connect(&addr)?;
                    // One-line requests: never wait out Nagle + delayed ACK.
                    stream.set_nodelay(true)?;
                    let mut writer = stream.try_clone()?;
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    let ask = |writer: &mut TcpStream,
                               reader: &mut BufReader<TcpStream>,
                               line: &mut String,
                               req: String|
                     -> Result<crate::wire::WireReply, ServeError> {
                        writeln!(writer, "{req}")?;
                        writer.flush()?;
                        line.clear();
                        reader.read_line(line)?;
                        crate::wire::parse_reply(line)
                    };
                    let mut alive: VecDeque<VmId> = VecDeque::with_capacity(window + 1);
                    let mut pinned: Vec<VmId> = Vec::new();
                    let mut latencies = Vec::with_capacity(per_client as usize);
                    let mut stages = StageSamples::default();
                    // Client 0 doubles as the chaos injector; the shard count
                    // is not visible over the wire, so chaos targets shard 0.
                    let mut chaos = (client == 0).then(|| Chaos::new(config, 1)).flatten();
                    let offset = (client as usize * specs.len()) / clients as usize;
                    for n in 0..per_client {
                        let spec = specs[(offset + n as usize) % specs.len()];
                        let id = client_vm_id(client, n);
                        let req = format!(
                            "{{\"op\":\"place\",\"id\":{},\"vcpus\":{},\"mem_mib\":{},\"level\":{}}}",
                            id.0,
                            spec.vcpus(),
                            spec.mem_mib(),
                            spec.level.ratio()
                        );
                        let t0 = Instant::now();
                        let reply = ask(&mut writer, &mut reader, &mut line, req)?;
                        latencies.push(t0.elapsed().as_micros() as f64);
                        stages.note_wire(&reply);
                        ops.fetch_add(1, Ordering::Relaxed);
                        let outcome = crate::tcp::classify(&reply);
                        tally.note(outcome);
                        if matches!(outcome, Outcome::Placed(_)) {
                            if slackvm_pressure::is_hot(config.usage_seed, id, config.hot_frac) {
                                pinned.push(id);
                            } else {
                                alive.push_back(id);
                            }
                        }
                        if alive.len() > window {
                            let oldest = alive.pop_front().expect("window > 0");
                            let req = format!("{{\"op\":\"remove\",\"id\":{}}}", oldest.0);
                            let reply = ask(&mut writer, &mut reader, &mut line, req)?;
                            ops.fetch_add(1, Ordering::Relaxed);
                            tally.note(crate::tcp::classify(&reply));
                        }
                        if let Some(chaos) = chaos.as_mut() {
                            if let Some(op) = chaos.tick(n) {
                                let req = chaos_wire_line(&op);
                                let reply = ask(&mut writer, &mut reader, &mut line, req)?;
                                ops.fetch_add(1, Ordering::Relaxed);
                                tally.note(crate::tcp::classify(&reply));
                            }
                        }
                    }
                    for op in chaos.as_mut().map(Chaos::drain).unwrap_or_default() {
                        let req = chaos_wire_line(&op);
                        let reply = ask(&mut writer, &mut reader, &mut line, req)?;
                        ops.fetch_add(1, Ordering::Relaxed);
                        tally.note(crate::tcp::classify(&reply));
                    }
                    for id in alive.into_iter().chain(pinned) {
                        let req = format!("{{\"op\":\"remove\",\"id\":{}}}", id.0);
                        let reply = ask(&mut writer, &mut reader, &mut line, req)?;
                        ops.fetch_add(1, Ordering::Relaxed);
                        tally.note(crate::tcp::classify(&reply));
                    }
                    Ok((latencies, stages))
                }),
            );
        }
        for handle in handles {
            let (latencies, stages) = handle.join().expect("bombard tcp client panicked")?;
            all_latencies.extend(latencies);
            all_stages.absorb(stages);
        }
        Ok(())
    })?;

    Ok(report(
        "closed-loop/tcp",
        ops.load(Ordering::Relaxed),
        started.elapsed(),
        &tally,
        &all_latencies,
        &all_stages,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ModelSpec, ServeConfig};

    fn service(shards: u32) -> PlacementService {
        PlacementService::start(ServeConfig {
            shards,
            model: ModelSpec::default_shared(),
            ..ServeConfig::default()
        })
        .unwrap()
    }

    fn small() -> BombardConfig {
        BombardConfig {
            population: 64,
            clients: 2,
            requests: 400,
            ..BombardConfig::default()
        }
    }

    #[test]
    fn unknown_scenario_is_a_config_error() {
        let config = BombardConfig {
            scenario: "rush-hour".into(),
            ..BombardConfig::default()
        };
        let err = config.specs().unwrap_err().to_string();
        assert!(
            err.contains("rush-hour") && err.contains("paper-week-f"),
            "{err}"
        );
    }

    #[test]
    fn closed_loop_places_everything_on_an_elastic_fleet() {
        let svc = service(2);
        let report = run_closed_loop(&svc, &small()).unwrap();
        assert_eq!(report.placed, 400, "{report:?}");
        assert_eq!(report.rejected + report.shed + report.unknown, 0);
        assert_eq!(report.removed, report.placed, "window fully drained");
        assert_eq!(report.ops, report.placed + report.removed);
        let p = report.latency.expect("latencies recorded");
        assert_eq!(p.count, 400);
        assert!(p.p50 <= p.p99 && p.p99 <= p.max);
        // Default trace level stages every request: the server-side
        // breakdown rides back on the replies.
        assert!(!report.stages.is_empty(), "{report:?}");
        assert_eq!(report.stages.queue.as_ref().unwrap().count, 400);
        assert!(report.render().contains("server     queue"), "{report:?}");
        let final_report = svc.stop();
        for shard in &final_report.shards {
            let (alloc, _) = shard.model.totals();
            assert!(alloc.is_empty(), "shard {} not drained", shard.shard);
        }
        final_report.check_invariants().unwrap();
    }

    #[test]
    fn colliding_client_bands_are_rejected() {
        let config = BombardConfig {
            clients: 2,
            requests: 4_000_000_000,
            ..BombardConfig::default()
        };
        let err = config.validate().unwrap_err().to_string();
        assert!(err.contains("band"), "{err}");
        assert!(BombardConfig::default().validate().is_ok());
        let zero = BombardConfig {
            chaos_fail_every: Some(0),
            ..BombardConfig::default()
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn chaos_failures_evacuate_and_recover() {
        let svc = service(2);
        let config = BombardConfig {
            chaos_fail_every: Some(25),
            ..small()
        };
        let report = run_closed_loop(&svc, &config).unwrap();
        assert!(report.chaos_ops > 0, "{report:?}");
        // The elastic fleet always has room, so every evicted VM is
        // re-placed and every window removal still finds its VM.
        assert_eq!(report.placed, 400, "{report:?}");
        assert_eq!(report.lost, 0, "{report:?}");
        assert_eq!(report.unknown, 0, "{report:?}");
        assert_eq!(
            report.ops,
            report.placed + report.removed + report.chaos_ops
        );
        let final_report = svc.stop();
        for shard in &final_report.shards {
            assert_eq!(shard.model.failed_pms(), 0, "shard {}", shard.shard);
            let (alloc, _) = shard.model.totals();
            assert!(alloc.is_empty(), "shard {} not drained", shard.shard);
        }
        final_report.check_invariants().unwrap();
    }

    #[test]
    fn hot_pinned_vms_survive_the_window_and_drain_at_the_end() {
        let svc = service(2);
        let config = BombardConfig {
            hot_frac: 0.25,
            ..small()
        };
        let report = run_closed_loop(&svc, &config).unwrap();
        // Every placed VM — windowed or pinned — is removed by the end,
        // so the run still drains to an empty fleet.
        assert_eq!(report.placed, 400, "{report:?}");
        assert_eq!(report.removed, report.placed, "{report:?}");
        assert_eq!(report.unknown, 0, "{report:?}");
        let final_report = svc.stop();
        for shard in &final_report.shards {
            let (alloc, _) = shard.model.totals();
            assert!(alloc.is_empty(), "shard {} not drained", shard.shard);
        }
        final_report.check_invariants().unwrap();

        let bad = BombardConfig {
            hot_frac: 1.5,
            ..BombardConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn open_loop_completes_at_a_modest_rate() {
        let svc = service(1);
        let config = BombardConfig {
            requests: 50,
            ..small()
        };
        let report = run_open_loop(&svc, &config, 5_000.0).unwrap();
        assert_eq!(report.placed, 50, "{report:?}");
        assert_eq!(report.busy, 0);
        assert!(report.latency.is_some());
        svc.stop().check_invariants().unwrap();
    }
}
