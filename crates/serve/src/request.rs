//! Request and configuration types of the placement service.

use std::sync::Arc;
use std::time::Duration;

use slackvm_durable::{DurableOptions, Manifest, ManifestModel};
use slackvm_model::{OversubLevel, PmConfig, PmId, VmId, VmSpec};
use slackvm_sched::{IndexMode, PlacementPolicy, POLICY_NAMES};
use slackvm_sim::{DedicatedDeployment, DeploymentModel, SharedDeployment};
use slackvm_telemetry::SloTargets;
use slackvm_topology::topology_from_spec;

use crate::error::ServeError;

/// One placement-plane operation, as submitted by a client.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Admit a VM into the fleet.
    Place {
        /// Client-chosen VM identity (must be fleet-unique).
        id: VmId,
        /// Requested shape and oversubscription level.
        spec: VmSpec,
    },
    /// Release a previously placed VM.
    Remove {
        /// The VM to release.
        id: VmId,
    },
    /// Vertically resize a placed VM in place.
    Resize {
        /// The VM to resize.
        id: VmId,
        /// New vCPU count.
        vcpus: u32,
        /// New memory size.
        mem_mib: u64,
    },
    /// Declare a PM failed: evict its VMs and re-place them through the
    /// normal admission path. PM ids are shard-local, so the op names
    /// the shard that owns the machine.
    FailPm {
        /// Shard owning the PM.
        shard: u32,
        /// The machine that failed.
        pm: PmId,
    },
    /// Return a previously failed (or draining) PM to service.
    RecoverPm {
        /// Shard owning the PM.
        shard: u32,
        /// The machine to restore.
        pm: PmId,
    },
    /// Drain a PM for maintenance: operationally identical to a
    /// failure (evict and re-place), but journalled and reported
    /// distinctly so an operator-initiated drain is never mistaken for
    /// a crash in the decision history.
    DrainPm {
        /// Shard owning the PM.
        shard: u32,
        /// The machine to drain.
        pm: PmId,
    },
}

impl Op {
    /// The VM the operation concerns (`None` for the PM-lifecycle
    /// control ops, which address machines, not VMs).
    pub fn vm(&self) -> Option<VmId> {
        match self {
            Op::Place { id, .. } | Op::Remove { id } | Op::Resize { id, .. } => Some(*id),
            Op::FailPm { .. } | Op::RecoverPm { .. } | Op::DrainPm { .. } => None,
        }
    }
}

/// The service's answer to one [`Op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Placed on this PM (PM ids are shard-local).
    Placed(PmId),
    /// Removed from this PM.
    Removed(PmId),
    /// Resize verdict: `accepted` is false when the hosting machine
    /// could not absorb the new size (old size stays in force).
    Resized {
        /// Whether the resize was applied.
        accepted: bool,
    },
    /// No shard could host the VM (capped fleets only).
    Rejected,
    /// Load-shed: the request's deadline passed while it was queued;
    /// it was never executed.
    Shed,
    /// Remove/Resize for a VM the service does not host.
    UnknownVm,
    /// A `FailPm` took effect: the evacuation scoreboard. `replaced`
    /// counts displaced VMs re-admitted synchronously on the owning
    /// shard; displaced VMs forwarded into the ring resolve later and
    /// are tallied under `serve.evac.*` and the lost-VM ledger.
    PmFailed {
        /// VMs evicted from the failed machine.
        evicted: u32,
        /// Evicted VMs re-placed on this shard before the reply.
        replaced: u32,
        /// Evicted VMs already known lost (no shard could host them).
        lost: u32,
    },
    /// A `RecoverPm` took effect; the machine accepts placements again.
    PmRecovered,
    /// A `DrainPm` took effect; same scoreboard as [`Outcome::PmFailed`].
    PmDraining {
        /// VMs evicted from the draining machine.
        evicted: u32,
        /// Evicted VMs re-placed on this shard before the reply.
        replaced: u32,
        /// Evicted VMs already known lost.
        lost: u32,
    },
}

/// One reply, paired to its request by `seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reply {
    /// The sequence number assigned at submission.
    pub seq: u64,
    /// Shard that produced the decision (`None` for front-door
    /// rejections such as [`Outcome::UnknownVm`]).
    pub shard: Option<u32>,
    /// The decision.
    pub outcome: Outcome,
    /// Queueing plus service time observed by the worker, microseconds.
    pub latency_us: u64,
    /// Request-scoped trace ID, minted at the door. Never zero for a
    /// request that entered the service.
    pub trace: u64,
    /// Time spent queued (enqueue → dequeue), microseconds. Zero when
    /// the service runs with [`TraceLevel::Off`].
    pub queue_us: u64,
    /// Time from dequeue to the placement decision, microseconds. Zero
    /// under [`TraceLevel::Off`].
    pub place_us: u64,
    /// Wall time of the WAL commit that gated this reply, microseconds
    /// (shared by every request in the batch; zero when the service is
    /// not durable or under [`TraceLevel::Off`]).
    pub commit_us: u64,
}

/// How much per-request timing the serve path records.
///
/// The default, [`TraceLevel::Stages`], stamps the lifecycle stages of
/// every request (two extra clock reads per request) and folds them
/// into the per-stage histograms. [`TraceLevel::Sampled`] additionally
/// emits every `every`-th request's full lifecycle as Chrome-trace
/// spans and feeds the per-shard slow-request digests.
/// [`TraceLevel::Off`] restores the untraced hot path: one clock read
/// per batch, no stage fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceLevel {
    /// No per-request stage timing (stage fields in replies are zero).
    Off,
    /// Stage timestamps and histograms for every request.
    Stages,
    /// `Stages`, plus full span emission for one request in `every`.
    Sampled {
        /// Sampling period: request sequence numbers divisible by this
        /// are traced end to end. 1 traces everything.
        every: u64,
    },
}

impl TraceLevel {
    /// Whether stage timestamps are being recorded at all.
    pub fn stages(&self) -> bool {
        !matches!(self, TraceLevel::Off)
    }

    /// The sampling period when span emission is on.
    pub fn sample_every(&self) -> Option<u64> {
        match self {
            TraceLevel::Sampled { every } => Some(*every),
            _ => None,
        }
    }
}

/// Which deployment model each shard owns.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// A SlackVM shared pool per shard.
    Shared {
        /// Worker topology spec (e.g. `"cores=32"`, see
        /// [`slackvm_topology::topology_from_spec`]).
        topology: String,
        /// Worker memory.
        mem_mib: u64,
        /// Placement policy name (see [`POLICY_NAMES`]).
        policy: String,
        /// Total fleet cap, split evenly across shards (`None` for an
        /// elastic fleet that opens PMs on demand).
        fleet_cap: Option<u32>,
    },
    /// The dedicated per-level baseline per shard.
    Dedicated {
        /// Worker topology spec.
        topology: String,
        /// Worker memory.
        mem_mib: u64,
    },
}

impl ModelSpec {
    /// The default shared pool: 32-core workers, 128 GiB, the paper's
    /// progress+bestfit policy, elastic fleet.
    pub fn default_shared() -> Self {
        ModelSpec::Shared {
            topology: "cores=32".into(),
            mem_mib: slackvm_model::gib(128),
            policy: "progress+bestfit".into(),
            fleet_cap: None,
        }
    }

    /// Builds the per-shard deployment model. `shards` is the total
    /// shard count (a capped fleet is split `ceil(cap / shards)` each,
    /// so the aggregate never falls below the configured cap).
    pub fn build(&self, shards: u32) -> Result<DeploymentModel, ServeError> {
        match self {
            ModelSpec::Shared {
                topology,
                mem_mib,
                policy,
                fleet_cap,
            } => {
                let topo = Arc::new(
                    topology_from_spec(topology).map_err(|e| ServeError::Config(e.to_string()))?,
                );
                let policy = PlacementPolicy::by_name(policy).ok_or_else(|| {
                    ServeError::Config(format!(
                        "unknown policy {policy:?} ({})",
                        POLICY_NAMES.join(", ")
                    ))
                })?;
                let pool = match fleet_cap {
                    Some(cap) => {
                        let per_shard = cap.div_ceil(shards.max(1));
                        let mut pool =
                            SharedDeployment::with_capped_cluster(topo, *mem_mib, per_shard);
                        pool.policy = policy;
                        pool
                    }
                    None => SharedDeployment::with_policy(topo, *mem_mib, policy),
                };
                Ok(DeploymentModel::Shared(pool))
            }
            ModelSpec::Dedicated { topology, mem_mib } => {
                let topo =
                    topology_from_spec(topology).map_err(|e| ServeError::Config(e.to_string()))?;
                Ok(DeploymentModel::Dedicated(DedicatedDeployment::new(
                    PmConfig::of(topo.num_cores(), *mem_mib),
                    [
                        OversubLevel::of(1),
                        OversubLevel::of(2),
                        OversubLevel::of(3),
                    ],
                )))
            }
        }
    }

    /// The durability-layer mirror of this spec, as written to a state
    /// directory's `MANIFEST`.
    pub fn to_manifest_model(&self) -> ManifestModel {
        match self {
            ModelSpec::Shared {
                topology,
                mem_mib,
                policy,
                fleet_cap,
            } => ManifestModel::Shared {
                topology: topology.clone(),
                mem_mib: *mem_mib,
                policy: policy.clone(),
                fleet_cap: *fleet_cap,
            },
            ModelSpec::Dedicated { topology, mem_mib } => ManifestModel::Dedicated {
                topology: topology.clone(),
                mem_mib: *mem_mib,
            },
        }
    }

    /// Rebuilds the spec a `MANIFEST` records — how `slackvm recover`
    /// and `slackvm fsck` reconstruct deployment models with no service
    /// configuration on the command line.
    pub fn from_manifest_model(model: &ManifestModel) -> ModelSpec {
        match model {
            ManifestModel::Shared {
                topology,
                mem_mib,
                policy,
                fleet_cap,
            } => ModelSpec::Shared {
                topology: topology.clone(),
                mem_mib: *mem_mib,
                policy: policy.clone(),
                fleet_cap: *fleet_cap,
            },
            ManifestModel::Dedicated { topology, mem_mib } => ModelSpec::Dedicated {
                topology: topology.clone(),
                mem_mib: *mem_mib,
            },
        }
    }
}

/// Online consolidation: each shard's worker periodically plans a
/// rebalance against its own model and executes a throttled slice of
/// the plan between admission batches (`slackvm_rebalance`).
///
/// The tick pauses itself whenever the shard is doing anything more
/// important: PMs draining or failed, the journal degraded, or the SLO
/// tracker reporting error-budget burn. Consolidation is strictly
/// optional work — it never competes with recovery or a struggling
/// request path.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceOptions {
    /// Planning interval: how often an idle (or between-batches) worker
    /// re-plans. Each tick executes at most
    /// [`Budget::max_concurrent`](slackvm_rebalance::Budget) moves.
    pub every: Duration,
    /// Cost budget every planning pass runs under.
    pub budget: slackvm_rebalance::Budget,
}

impl Default for RebalanceOptions {
    fn default() -> Self {
        RebalanceOptions {
            every: Duration::from_secs(5),
            budget: slackvm_rebalance::Budget::default(),
        }
    }
}

/// Online hotspot mitigation: each shard's worker periodically scores
/// per-PM pressure from the synthesized usage signal
/// (`slackvm_pressure::synth_frac`) and executes a throttled slice of
/// the resulting spread-out plan between admission batches.
///
/// The pressure tick obeys the same pauses as consolidation (draining
/// or failed PMs, a degraded journal, SLO burn) and is interlocked
/// with it: when both are due in the same tick, mitigation runs and
/// consolidation waits — packing tighter is pointless while a PM is
/// saturating.
#[derive(Debug, Clone, PartialEq)]
pub struct PressureOptions {
    /// Planning interval: how often an idle (or between-batches)
    /// worker re-scores the fleet. Each tick executes at most
    /// [`Budget::max_concurrent`](slackvm_rebalance::Budget) moves.
    pub every: Duration,
    /// Cost budget every mitigation pass runs under.
    pub budget: slackvm_rebalance::Budget,
    /// Hot/warm/cold thresholds and oversubscription weighting.
    pub thresholds: slackvm_pressure::PressureConfig,
    /// Seed of the synthesized per-VM usage profile. `bombard
    /// --usage-seed` must match for the client-side hot set to line up.
    pub usage_seed: u64,
    /// Fraction of VM ids that are hot (benchmark-class) in the
    /// synthesized profile.
    pub hot_frac: f64,
}

impl Default for PressureOptions {
    fn default() -> Self {
        PressureOptions {
            every: Duration::from_secs(5),
            budget: slackvm_rebalance::Budget::default(),
            thresholds: slackvm_pressure::PressureConfig::default(),
            usage_seed: 42,
            hot_frac: 0.0,
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Number of shards (single-threaded state owners).
    pub shards: u32,
    /// Bounded depth of each shard's admission queue; a full queue
    /// blocks `submit` (backpressure) or fails `try_submit` (shedding
    /// at the door).
    pub queue_depth: usize,
    /// Maximum requests drained per batch (amortizes index refresh and
    /// metric flushing).
    pub batch_max: usize,
    /// Default per-request deadline; a request still queued past it is
    /// shed. `None` disables shedding.
    pub deadline: Option<Duration>,
    /// Deterministic mode: requires one shard, ignores deadlines, and
    /// makes the service reproduce offline `run_packing` decisions
    /// exactly (proven by `tests/serve_differential.rs`).
    pub deterministic: bool,
    /// Per-shard deployment model.
    pub model: ModelSpec,
    /// Candidate-assembly mode for every shard.
    pub index: IndexMode,
    /// Sample in-flight depth / shed rate / per-shard utilization every
    /// this many milliseconds (`None` disables the sampler thread).
    pub sample_interval_ms: Option<u64>,
    /// Crash durability: journal every committed decision to a
    /// write-ahead log and snapshot periodically under this state
    /// directory. On restart against the same directory the service
    /// recovers its placements. `None` keeps the service in-memory
    /// only.
    pub durable: Option<DurableOptions>,
    /// What a journal write failure does to its shard. `false` (the
    /// default) degrades gracefully: the shard stops journalling, keeps
    /// serving from memory, and `/healthz` names it journal-degraded.
    /// `true` restores fail-stop behavior: the worker panics, taking
    /// the shard down rather than serving without durability.
    pub durable_fail_stop: bool,
    /// Per-request tracing depth (stage histograms, span sampling).
    pub trace: TraceLevel,
    /// Watchdog threshold for the `/healthz` plane: a shard whose
    /// worker heartbeat is older than this is reported stalled and
    /// flips the endpoint to 503.
    pub stall_threshold: Duration,
    /// Objectives the `/slo` plane scores the rolling window against.
    pub slo: SloTargets,
    /// Online consolidation: background rebalance ticks per shard.
    /// `None` (the default) never migrates on its own.
    pub rebalance: Option<RebalanceOptions>,
    /// Online hotspot mitigation: background pressure ticks per shard.
    /// `None` (the default) never spreads on its own.
    pub pressure: Option<PressureOptions>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            queue_depth: 1024,
            batch_max: 64,
            deadline: None,
            deterministic: false,
            model: ModelSpec::default_shared(),
            index: IndexMode::default(),
            sample_interval_ms: None,
            durable: None,
            durable_fail_stop: false,
            trace: TraceLevel::Stages,
            stall_threshold: Duration::from_secs(2),
            slo: SloTargets::default(),
            rebalance: None,
            pressure: None,
        }
    }
}

impl ServeConfig {
    /// Validates field combinations.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.shards == 0 {
            return Err(ServeError::Config("shards must be >= 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::Config("queue depth must be >= 1".into()));
        }
        if self.batch_max == 0 {
            return Err(ServeError::Config("batch max must be >= 1".into()));
        }
        if self.deterministic && self.shards != 1 {
            return Err(ServeError::Config(
                "deterministic mode requires exactly one shard".into(),
            ));
        }
        if let Some(durable) = &self.durable {
            if durable.dir.as_os_str().is_empty() {
                return Err(ServeError::Config(
                    "state directory must not be empty".into(),
                ));
            }
        }
        if self.durable_fail_stop && self.durable.is_none() {
            return Err(ServeError::Config(
                "durable fail-stop requires a state directory".into(),
            ));
        }
        if self.trace == (TraceLevel::Sampled { every: 0 }) {
            return Err(ServeError::Config(
                "trace sampling period must be >= 1".into(),
            ));
        }
        if self.stall_threshold.is_zero() {
            return Err(ServeError::Config(
                "stall threshold must be nonzero".into(),
            ));
        }
        self.slo
            .validate()
            .map_err(|e| ServeError::Config(format!("slo targets: {e}")))?;
        if let Some(rebalance) = &self.rebalance {
            if rebalance.every.is_zero() {
                return Err(ServeError::Config(
                    "rebalance interval must be nonzero".into(),
                ));
            }
            rebalance
                .budget
                .validate()
                .map_err(|e| ServeError::Config(format!("rebalance budget: {e}")))?;
        }
        if let Some(pressure) = &self.pressure {
            if pressure.every.is_zero() {
                return Err(ServeError::Config(
                    "pressure interval must be nonzero".into(),
                ));
            }
            pressure
                .budget
                .validate()
                .map_err(|e| ServeError::Config(format!("pressure budget: {e}")))?;
            pressure
                .thresholds
                .validate()
                .map_err(|e| ServeError::Config(format!("pressure thresholds: {e}")))?;
            if !(0.0..=1.0).contains(&pressure.hot_frac) {
                return Err(ServeError::Config(
                    "pressure hot fraction must be within [0, 1]".into(),
                ));
            }
        }
        Ok(())
    }

    /// The manifest this configuration writes into (and must agree
    /// with) a state directory.
    pub fn manifest(&self) -> Manifest {
        Manifest {
            shards: self.shards,
            index: self.index.name().to_string(),
            model: self.model.to_manifest_model(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_degenerate_shapes() {
        assert!(ServeConfig::default().validate().is_ok());
        let mut c = ServeConfig {
            shards: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c.shards = 4;
        c.deterministic = true;
        assert!(c.validate().is_err(), "deterministic needs one shard");
        c.shards = 1;
        assert!(c.validate().is_ok());
        c.trace = TraceLevel::Sampled { every: 0 };
        assert!(c.validate().is_err(), "sampling period 0 is degenerate");
        c.trace = TraceLevel::Sampled { every: 8 };
        assert!(c.validate().is_ok());
        c.stall_threshold = Duration::ZERO;
        assert!(c.validate().is_err(), "watchdog needs a nonzero threshold");
        c.stall_threshold = Duration::from_millis(500);
        c.slo.availability = 1.5;
        assert!(c.validate().is_err(), "availability target out of range");
    }

    #[test]
    fn model_spec_build_reports_bad_names() {
        let bad_policy = ModelSpec::Shared {
            topology: "cores=8".into(),
            mem_mib: slackvm_model::gib(32),
            policy: "best-effort".into(),
            fleet_cap: None,
        };
        let err = match bad_policy.build(1) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("bad policy accepted"),
        };
        assert!(
            err.contains("best-effort") && err.contains("progress"),
            "{err}"
        );
        let bad_topo = ModelSpec::Dedicated {
            topology: "cores=banana".into(),
            mem_mib: slackvm_model::gib(32),
        };
        assert!(bad_topo.build(1).is_err());
    }

    #[test]
    fn manifest_mirrors_the_config_both_ways() {
        let config = ServeConfig {
            shards: 3,
            model: ModelSpec::Shared {
                topology: "cores=16".into(),
                mem_mib: slackvm_model::gib(64),
                policy: "progress+bestfit".into(),
                fleet_cap: Some(30),
            },
            ..Default::default()
        };
        let manifest = config.manifest();
        assert_eq!(manifest.shards, 3);
        assert_eq!(
            ModelSpec::from_manifest_model(&manifest.model),
            config.model
        );
        let dedicated = ModelSpec::Dedicated {
            topology: "cores=8".into(),
            mem_mib: slackvm_model::gib(32),
        };
        assert_eq!(
            ModelSpec::from_manifest_model(&dedicated.to_manifest_model()),
            dedicated
        );
    }

    #[test]
    fn capped_fleet_splits_across_shards() {
        let spec = ModelSpec::Shared {
            topology: "cores=8".into(),
            mem_mib: slackvm_model::gib(32),
            policy: "first-fit".into(),
            fleet_cap: Some(5),
        };
        // ceil(5/2) = 3 PMs per shard; aggregate 6 >= requested 5.
        for _ in 0..2 {
            let model = spec.build(2).unwrap();
            assert_eq!(model.opened_pms(), 0);
        }
    }
}
