//! Service errors.

use thiserror::Error;

/// Errors raised by the placement service and its frontends.
#[derive(Debug, Error)]
pub enum ServeError {
    /// A configuration field failed validation.
    #[error("invalid serve configuration: {0}")]
    Config(String),

    /// The admission queue of every eligible shard was full and the
    /// caller asked not to block ([`crate::PlacementService::try_submit`]).
    #[error("admission queue full; request dropped under backpressure")]
    Busy,

    /// The service stopped before answering — the request's reply
    /// channel disconnected.
    #[error("service stopped before replying")]
    Disconnected,

    /// A wire-protocol line could not be parsed.
    #[error("bad request line: {0}")]
    BadRequest(String),

    /// Socket-level failure on the TCP frontend.
    #[error("i/o error: {0}")]
    Io(#[from] std::io::Error),

    /// The durability layer failed while opening or recovering shard
    /// state at startup. (Failures *after* startup — a WAL append or
    /// fsync going bad mid-flight — panic the owning shard worker
    /// instead: the service must never acknowledge a decision it could
    /// not persist.)
    #[error("durability: {0}")]
    Durable(#[from] slackvm_durable::DurableError),
}
