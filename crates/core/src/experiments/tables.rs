//! Tables I–III: catalog statistics and the testbed description.

use serde::{Deserialize, Serialize};

use slackvm_model::OversubLevel;
use slackvm_topology::builders;
use slackvm_workload::catalog::{azure, ovhcloud};
use slackvm_workload::Catalog;

/// One row of Table I: average request sizes per VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Provider label.
    pub provider: String,
    /// Mean vCPUs per VM.
    pub mean_vcpus: f64,
    /// Mean memory per VM (GiB).
    pub mean_mem_gib: f64,
    /// The value the paper reports, for side-by-side comparison.
    pub paper_vcpus: f64,
    /// The paper's memory value (GB).
    pub paper_mem_gb: f64,
}

/// Computes Table I from the calibrated catalogs.
pub fn table1() -> Vec<Table1Row> {
    let paper = [("azure", 2.25, 4.8), ("ovhcloud", 3.24, 10.05)];
    [azure(), ovhcloud()]
        .into_iter()
        .zip(paper)
        .map(|(catalog, (_, pv, pm))| Table1Row {
            provider: catalog.provider.clone(),
            mean_vcpus: catalog.mean_vcpus(),
            mean_mem_gib: catalog.mean_mem_gib(),
            paper_vcpus: pv,
            paper_mem_gb: pm,
        })
        .collect()
}

/// One row of Table II: the provisioned M/C ratio per oversubscription
/// level (GiB per physical core).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Provider label.
    pub provider: String,
    /// Measured ratios at 1:1, 2:1, 3:1.
    pub ratios: [f64; 3],
    /// The paper's values.
    pub paper: [f64; 3],
}

/// Computes Table II from the calibrated catalogs (oversubscribed tiers
/// restricted to ≤ 8 GiB flavors, as in the paper).
pub fn table2() -> Vec<Table2Row> {
    let ratios = |c: &Catalog| [1u32, 2, 3].map(|n| c.mc_ratio_at(OversubLevel::of(n)));
    vec![
        Table2Row {
            provider: "azure".into(),
            ratios: ratios(&azure()),
            paper: [2.1, 3.0, 4.5],
        },
        Table2Row {
            provider: "ovhcloud".into(),
            ratios: ratios(&ovhcloud()),
            paper: [3.1, 3.9, 5.8],
        },
    ]
}

/// Renders Table III — the testbed hardware — from the modeled topology
/// (2× AMD EPYC 7662, 256 threads, 1 TiB, M/C = 4).
pub fn table3() -> String {
    let topo = builders::dual_epyc_7662();
    let threads = topo.num_cores();
    let mem_gib = 1024u64;
    format!(
        "Processor: AMD EPYC 7662 64-cores x2 (modeled)\n\
         Total threads: {} ({} sockets x 64 cores x 2 hyperthreads)\n\
         Memory: {} GiB\n\
         Memory per Core (M/C): {}/{} = {}\n\
         Topology: {}",
        threads,
        topo.num_sockets(),
        mem_gib,
        mem_gib,
        threads,
        mem_gib / threads as u64,
        topo.summary(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_tracks_paper_within_5_percent() {
        for row in table1() {
            assert!(
                (row.mean_vcpus - row.paper_vcpus).abs() / row.paper_vcpus < 0.05,
                "{}: vcpus {} vs paper {}",
                row.provider,
                row.mean_vcpus,
                row.paper_vcpus
            );
            assert!(
                (row.mean_mem_gib - row.paper_mem_gb).abs() / row.paper_mem_gb < 0.05,
                "{}: mem {} vs paper {}",
                row.provider,
                row.mean_mem_gib,
                row.paper_mem_gb
            );
        }
    }

    #[test]
    fn table2_tracks_paper_within_5_percent() {
        for row in table2() {
            for (got, want) in row.ratios.iter().zip(row.paper) {
                assert!(
                    (got - want).abs() / want < 0.05,
                    "{}: {} vs paper {}",
                    row.provider,
                    got,
                    want
                );
            }
            // Ratios grow with the oversubscription level.
            assert!(row.ratios[0] < row.ratios[1] && row.ratios[1] < row.ratios[2]);
        }
    }

    #[test]
    fn table3_mentions_the_testbed() {
        let t = table3();
        assert!(t.contains("256"));
        assert!(t.contains("1024"));
        assert!(t.contains("= 4"));
    }
}
