//! Fig. 3: unallocated resources, dedicated clusters vs SlackVM.

use std::sync::Arc;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use slackvm_model::PmConfig;
use slackvm_sim::{
    run_packing, DedicatedDeployment, DeploymentModel, PackingOutcome, SharedDeployment,
};
use slackvm_topology::builders;
use slackvm_workload::{
    ArrivalModel, Catalog, DistributionPoint, LevelMix, WorkloadGenerator, WorkloadSpec,
};

/// Protocol parameters of the scale experiments (paper §VII-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackingConfig {
    /// Steady-state VM population target (paper: 500).
    pub target_population: u32,
    /// Worker hardware (paper: 32 cores / 128 GiB, M/C = 4).
    pub host: PmConfig,
    /// RNG seed for workload generation.
    pub seed: u64,
}

impl Default for PackingConfig {
    fn default() -> Self {
        PackingConfig {
            target_population: 500,
            host: PmConfig::simulation_host(),
            seed: 0x5AC4,
        }
    }
}

/// Baseline and SlackVM outcomes on the same workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackingComparison {
    /// Dedicated First-Fit clusters.
    pub baseline: PackingOutcome,
    /// Shared SlackVM pool with the progress scorer.
    pub slackvm: PackingOutcome,
}

impl PackingComparison {
    /// PM savings in percent (Fig. 4's cell value).
    pub fn savings_pct(&self) -> f64 {
        self.slackvm.savings_vs(&self.baseline)
    }
}

/// Replays one generated workload against both deployment models.
pub fn compare_packing(
    catalog: &Catalog,
    mix: &LevelMix,
    config: &PackingConfig,
) -> PackingComparison {
    let workload = WorkloadGenerator::new(WorkloadSpec {
        catalog: catalog.clone(),
        mix: mix.clone(),
        arrivals: ArrivalModel::paper_week(config.target_population),
        seed: config.seed,
    })
    .generate();

    let mut baseline =
        DeploymentModel::Dedicated(DedicatedDeployment::new(config.host, mix.levels()));
    let baseline_out = run_packing(&workload, &mut baseline);

    let topology = Arc::new(builders::flat(config.host.cores));
    let mut shared = DeploymentModel::Shared(SharedDeployment::new(topology, config.host.mem_mib));
    let slackvm_out = run_packing(&workload, &mut shared);

    PackingComparison {
        baseline: baseline_out,
        slackvm: slackvm_out,
    }
}

/// Like [`compare_packing`], with the SlackVM pool additionally running
/// a compaction (live-migration) round every `compact_every_secs` — the
/// paper's future-work extension as a third contender. Returns the
/// comparison (SlackVM side = compacting pool) plus migration stats.
pub fn compare_packing_with_compaction(
    catalog: &Catalog,
    mix: &LevelMix,
    config: &PackingConfig,
    compact_every_secs: u64,
) -> (PackingComparison, slackvm_sim::CompactionStats) {
    let workload = WorkloadGenerator::new(WorkloadSpec {
        catalog: catalog.clone(),
        mix: mix.clone(),
        arrivals: ArrivalModel::paper_week(config.target_population),
        seed: config.seed,
    })
    .generate();

    let mut baseline =
        DeploymentModel::Dedicated(DedicatedDeployment::new(config.host, mix.levels()));
    let baseline_out = run_packing(&workload, &mut baseline);

    let topology = Arc::new(builders::flat(config.host.cores));
    let mut pool = SharedDeployment::new(topology, config.host.mem_mib);
    let (slackvm_out, stats) =
        slackvm_sim::run_packing_compacting(&workload, &mut pool, compact_every_secs);

    (
        PackingComparison {
            baseline: baseline_out,
            slackvm: slackvm_out,
        },
        stats,
    )
}

/// One bar group of Fig. 3: a distribution's unallocated shares under
/// both models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Distribution letter (A..O).
    pub letter: char,
    /// Shares of the three levels, in percent points.
    pub shares: (u32, u32, u32),
    /// Unallocated CPU share at peak occupancy, baseline.
    pub baseline_cpu: f64,
    /// Unallocated memory share at peak occupancy, baseline.
    pub baseline_mem: f64,
    /// Unallocated CPU share at peak occupancy, SlackVM.
    pub slackvm_cpu: f64,
    /// Unallocated memory share at peak occupancy, SlackVM.
    pub slackvm_mem: f64,
    /// PMs opened, baseline.
    pub baseline_pms: u32,
    /// PMs opened, SlackVM.
    pub slackvm_pms: u32,
}

impl Fig3Row {
    /// Combined (cpu + mem) unallocated share, baseline.
    pub fn baseline_total(&self) -> f64 {
        self.baseline_cpu + self.baseline_mem
    }

    /// Combined (cpu + mem) unallocated share, SlackVM.
    pub fn slackvm_total(&self) -> f64 {
        self.slackvm_cpu + self.slackvm_mem
    }
}

/// Runs Fig. 3 for one provider catalog across the fifteen paper
/// distributions A..O (in parallel).
pub fn run_fig3(catalog: &Catalog, config: &PackingConfig) -> Vec<Fig3Row> {
    DistributionPoint::all()
        .into_par_iter()
        .map(|point| {
            let cmp = compare_packing(catalog, &point.mix(), config);
            Fig3Row {
                letter: point.letter,
                shares: (point.p1, point.p2, point.p3),
                baseline_cpu: cmp.baseline.at_peak.unallocated_cpu,
                baseline_mem: cmp.baseline.at_peak.unallocated_mem,
                slackvm_cpu: cmp.slackvm.at_peak.unallocated_cpu,
                slackvm_mem: cmp.slackvm.at_peak.unallocated_mem,
                baseline_pms: cmp.baseline.opened_pms,
                slackvm_pms: cmp.slackvm.opened_pms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_workload::catalog;

    fn quick_config() -> PackingConfig {
        PackingConfig {
            target_population: 400,
            ..PackingConfig::default()
        }
    }

    #[test]
    fn mix_f_ovh_shows_substantial_savings() {
        // The paper's headline: distribution F (50% 1:1 + 50% 3:1) on
        // OVHcloud saves ~9.6% of PMs.
        let point = DistributionPoint::by_letter('F').unwrap();
        let cmp = compare_packing(&catalog::ovhcloud(), &point.mix(), &quick_config());
        let savings = cmp.savings_pct();
        assert!(
            savings > 4.0,
            "expected substantial savings on F/OVH, got {savings:.1}% \
             ({} -> {} PMs)",
            cmp.baseline.opened_pms,
            cmp.slackvm.opened_pms
        );
    }

    #[test]
    fn pure_premium_distribution_saves_little() {
        // Distribution A (100% 1:1): no complementarity to exploit; any
        // gain is the marginal threshold effect.
        let point = DistributionPoint::by_letter('A').unwrap();
        let cmp = compare_packing(&catalog::ovhcloud(), &point.mix(), &quick_config());
        let savings = cmp.savings_pct();
        assert!(
            savings.abs() < 6.0,
            "A should be near-neutral, got {savings:.1}%"
        );
    }

    #[test]
    fn fig3_covers_all_letters_and_shows_the_shift() {
        let rows = run_fig3(&catalog::azure(), &quick_config());
        assert_eq!(rows.len(), 15);
        let a = rows.iter().find(|r| r.letter == 'A').unwrap();
        let o = rows.iter().find(|r| r.letter == 'O').unwrap();
        // Paper Fig. 3: low-oversubscription mixes strand memory
        // (CPU-bound); heavily oversubscribed ones strand CPU
        // (memory-bound).
        assert!(
            a.baseline_mem > a.baseline_cpu,
            "A: mem {} vs cpu {}",
            a.baseline_mem,
            a.baseline_cpu
        );
        assert!(
            o.baseline_cpu > o.baseline_mem,
            "O: cpu {} vs mem {}",
            o.baseline_cpu,
            o.baseline_mem
        );
    }

    #[test]
    fn compaction_mode_matches_or_beats_plain_slackvm() {
        let point = DistributionPoint::by_letter('F').unwrap();
        let cfg = quick_config();
        let plain = compare_packing(&catalog::ovhcloud(), &point.mix(), &cfg);
        let (compacting, stats) =
            compare_packing_with_compaction(&catalog::ovhcloud(), &point.mix(), &cfg, 12 * 3600);
        assert_eq!(compacting.baseline, plain.baseline, "same baseline trace");
        assert!(
            compacting.slackvm.opened_pms <= plain.slackvm.opened_pms,
            "compacting {} vs plain {}",
            compacting.slackvm.opened_pms,
            plain.slackvm.opened_pms
        );
        assert!(stats.rounds > 10, "a week at 12h cadence: {:?}", stats);
        assert!(stats.migrations > 0);
    }

    #[test]
    fn slackvm_never_needs_vastly_more_pms() {
        for letter in ['A', 'F', 'K', 'O'] {
            let point = DistributionPoint::by_letter(letter).unwrap();
            let cmp = compare_packing(&catalog::azure(), &point.mix(), &quick_config());
            assert!(
                cmp.slackvm.opened_pms <= cmp.baseline.opened_pms + 2,
                "{letter}: slackvm {} vs baseline {}",
                cmp.slackvm.opened_pms,
                cmp.baseline.opened_pms
            );
        }
    }
}
