//! Table IV and Fig. 2: the physical-experiment reproduction.

use slackvm_perf::{Fig2Outcome, Fig2Scenario};

use crate::report::{ms, TextTable};

/// Runs the default Fig. 2 / Table IV scenario and returns the outcome
/// together with a rendered Table IV.
pub fn run_fig2_table4() -> (Fig2Outcome, String) {
    let outcome = Fig2Scenario::default().run();
    let table = render_table4(&outcome);
    (outcome, table)
}

/// Renders Table IV ("performance comparison by the median of the 90th
/// response times measured") from an outcome.
pub fn render_table4(outcome: &Fig2Outcome) -> String {
    let mut t = TextTable::new([
        "Oversubscription level",
        "Baseline (ms)",
        "SlackVM (ms)",
        "Factor",
        "Paper (ms -> ms, factor)",
    ]);
    let paper = [
        ("1.16", "1.27", "x1.09"),
        ("1.46", "1.65", "x1.13"),
        ("3.47", "7.67", "x2.21"),
    ];
    for (row, (pb, ps, pf)) in outcome.levels.iter().zip(paper) {
        t.row([
            row.level.to_string(),
            ms(row.baseline_ms),
            ms(row.slackvm_ms),
            format!("x{:.2}", row.overhead),
            format!("{pb} -> {ps}, {pf}"),
        ]);
    }
    t.render()
}

/// Renders the Fig. 2 distribution summary (per-VM p90 distributions per
/// level and scenario — the textual stand-in for the paper's box plot).
pub fn render_fig2(outcome: &Fig2Outcome) -> String {
    let mut t = TextTable::new([
        "Level",
        "Scenario",
        "p50 of p90s",
        "p90 of p90s",
        "p99 of p90s",
        "max",
        "VMs",
    ]);
    for row in &outcome.levels {
        for (scenario, dist) in [
            ("baseline", &row.baseline_dist),
            ("slackvm", &row.slackvm_dist),
        ] {
            t.row([
                row.level.to_string(),
                scenario.to_string(),
                ms(dist.p50),
                ms(dist.p90),
                ms(dist.p99),
                ms(dist.max),
                dist.count.to_string(),
            ]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_outcome() -> Fig2Outcome {
        Fig2Scenario {
            step_secs: 1200,
            ..Fig2Scenario::default()
        }
        .run()
    }

    #[test]
    fn table4_mentions_all_levels_and_paper_values() {
        let t = render_table4(&quick_outcome());
        for needle in ["1:1", "2:1", "3:1", "1.16", "7.67"] {
            assert!(t.contains(needle), "missing {needle} in\n{t}");
        }
    }

    #[test]
    fn fig2_rendering_has_two_rows_per_level() {
        let out = quick_outcome();
        let rendered = render_fig2(&out);
        assert_eq!(rendered.matches("baseline").count(), 3);
        assert_eq!(rendered.matches("slackvm").count(), 3);
    }
}
