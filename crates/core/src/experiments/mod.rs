//! Regeneration of every table and figure of the paper's evaluation.
//!
//! | artifact | function |
//! |---|---|
//! | Table I (mean request sizes)        | [`tables::table1`] |
//! | Table II (tier M/C ratios)          | [`tables::table2`] |
//! | Table III (testbed description)     | [`tables::table3`] |
//! | Table IV + Fig. 2 (response times)  | [`physical::run_fig2_table4`] |
//! | Fig. 3 (unallocated resources)      | [`packing::run_fig3`] |
//! | Fig. 4 (PM savings grid)            | [`savings::run_fig4`] |
//! | sensitivity sweeps (extensions)     | [`sensitivity`] |

pub mod packing;
pub mod physical;
pub mod savings;
pub mod sensitivity;
pub mod summary;
pub mod tables;

pub use packing::{
    compare_packing, compare_packing_with_compaction, run_fig3, Fig3Row, PackingComparison,
    PackingConfig,
};
pub use physical::run_fig2_table4;
pub use savings::{run_fig4, Fig4Cell, Fig4Grid};
pub use sensitivity::{
    hardware_mc_sweep, population_sweep, replicated_savings, McSweepRow, PopulationSweepRow,
    ReplicatedSavings,
};
pub use summary::trace_report;
pub use tables::{table1, table2, table3, Table1Row, Table2Row};
