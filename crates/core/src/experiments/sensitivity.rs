//! Sensitivity studies around the headline experiments.
//!
//! The paper's evaluation fixes the worker shape (M/C 4), one workload
//! seed and exponential lifetimes. These sweeps probe how robust the
//! SlackVM gains are to each of those choices — the questions a provider
//! would ask before adopting the architecture.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use slackvm_model::{gib, PmConfig};
use slackvm_workload::{Catalog, LevelMix};

use super::packing::{compare_packing, PackingComparison, PackingConfig};

/// One row of the hardware Memory-per-Core sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McSweepRow {
    /// Worker memory (GiB) at 32 cores.
    pub mem_gib: u64,
    /// The worker's target M/C ratio.
    pub target_ratio: f64,
    /// PMs, baseline.
    pub baseline_pms: u32,
    /// PMs, SlackVM.
    pub slackvm_pms: u32,
    /// Savings (%).
    pub savings_pct: f64,
}

/// Sweeps the worker hardware's M/C ratio (32 cores, varying DRAM):
/// gains peak where the workload's tiers straddle the hardware ratio and
/// vanish when one resource dominates every tier.
pub fn hardware_mc_sweep(
    catalog: &Catalog,
    mix: &LevelMix,
    config: &PackingConfig,
    mem_gib_options: &[u64],
) -> Vec<McSweepRow> {
    mem_gib_options
        .par_iter()
        .map(|&mem_gib| {
            let host = PmConfig::of(32, gib(mem_gib));
            let cfg = PackingConfig {
                host,
                ..config.clone()
            };
            let cmp = compare_packing(catalog, mix, &cfg);
            McSweepRow {
                mem_gib,
                target_ratio: host.target_ratio().gib_per_core(),
                baseline_pms: cmp.baseline.opened_pms,
                slackvm_pms: cmp.slackvm.opened_pms,
                savings_pct: cmp.savings_pct(),
            }
        })
        .collect()
}

/// One row of the population sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSweepRow {
    /// Steady-state population target.
    pub population: u32,
    /// PMs, baseline.
    pub baseline_pms: u32,
    /// PMs, SlackVM.
    pub slackvm_pms: u32,
    /// Savings (%).
    pub savings_pct: f64,
}

/// Sweeps the workload scale. The paper notes its gains "scale with the
/// cluster size" while the First-Fit threshold effect (≤ n−1 PMs) does
/// not; this sweep separates the two regimes.
pub fn population_sweep(
    catalog: &Catalog,
    mix: &LevelMix,
    config: &PackingConfig,
    populations: &[u32],
) -> Vec<PopulationSweepRow> {
    populations
        .par_iter()
        .map(|&population| {
            let cfg = PackingConfig {
                target_population: population,
                ..config.clone()
            };
            let cmp = compare_packing(catalog, mix, &cfg);
            PopulationSweepRow {
                population,
                baseline_pms: cmp.baseline.opened_pms,
                slackvm_pms: cmp.slackvm.opened_pms,
                savings_pct: cmp.savings_pct(),
            }
        })
        .collect()
}

/// Aggregate statistics over seed replications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedSavings {
    /// Number of replications.
    pub runs: usize,
    /// Mean savings (%).
    pub mean: f64,
    /// Sample standard deviation of savings (%).
    pub std_dev: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
    /// The individual comparisons, by seed order.
    pub comparisons: Vec<PackingComparison>,
}

/// Replays the comparison across `seeds` and aggregates the savings —
/// the error bars the paper's single-run protocol lacks.
pub fn replicated_savings(
    catalog: &Catalog,
    mix: &LevelMix,
    config: &PackingConfig,
    seeds: &[u64],
) -> ReplicatedSavings {
    let comparisons: Vec<PackingComparison> = seeds
        .par_iter()
        .map(|&seed| {
            let cfg = PackingConfig {
                seed,
                ..config.clone()
            };
            compare_packing(catalog, mix, &cfg)
        })
        .collect();
    let savings: Vec<f64> = comparisons.iter().map(|c| c.savings_pct()).collect();
    let n = savings.len().max(1);
    let mean = savings.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        savings.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    ReplicatedSavings {
        runs: savings.len(),
        mean,
        std_dev: var.sqrt(),
        min: savings.iter().copied().fold(f64::INFINITY, f64::min),
        max: savings.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_workload::{catalog, DistributionPoint};

    fn cfg() -> PackingConfig {
        PackingConfig {
            target_population: 250,
            ..PackingConfig::default()
        }
    }

    fn mix_f() -> LevelMix {
        DistributionPoint::by_letter('F').unwrap().mix()
    }

    #[test]
    fn mc_sweep_changes_the_gain_structure() {
        let rows = hardware_mc_sweep(&catalog::ovhcloud(), &mix_f(), &cfg(), &[64, 128, 256]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].target_ratio, 2.0);
        assert_eq!(rows[1].target_ratio, 4.0);
        assert_eq!(rows[2].target_ratio, 8.0);
        // At 8 GiB/core every tier is CPU-bound (max tier ratio 5.8):
        // memory never binds, so there is no complementarity left and
        // the two architectures converge.
        let extreme = &rows[2];
        assert!(
            extreme.savings_pct.abs() <= 5.0,
            "no complementarity expected at M/C 8, got {:.1}%",
            extreme.savings_pct
        );
        // At 4 GiB/core (the paper's shape) the gain is substantial.
        assert!(rows[1].savings_pct > 3.0, "got {:.1}%", rows[1].savings_pct);
    }

    #[test]
    fn population_sweep_is_monotone_in_cluster_size() {
        let rows = population_sweep(&catalog::ovhcloud(), &mix_f(), &cfg(), &[100, 300, 600]);
        assert_eq!(rows.len(), 3);
        for pair in rows.windows(2) {
            assert!(pair[1].baseline_pms >= pair[0].baseline_pms);
        }
        // Gains persist at scale (they are not just the threshold
        // effect, which would decay as 1/PMs).
        assert!(rows[2].savings_pct > 2.0, "got {:.1}%", rows[2].savings_pct);
    }

    #[test]
    fn replication_quantifies_seed_noise() {
        let stats = replicated_savings(&catalog::ovhcloud(), &mix_f(), &cfg(), &[1, 2, 3, 4, 5]);
        assert_eq!(stats.runs, 5);
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
        assert!(stats.std_dev >= 0.0);
        // The headline effect survives averaging across seeds.
        assert!(
            stats.mean > 3.0,
            "mean savings {:.1}% ± {:.1}",
            stats.mean,
            stats.std_dev
        );
    }
}
