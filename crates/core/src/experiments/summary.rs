//! One-stop markdown report for a workload trace: what the trace looks
//! like, what each deployment model costs, where the steady state sits,
//! and what migration could still reclaim.

use std::fmt::Write as _;
use std::sync::Arc;

use slackvm_hypervisor::{plan_compaction, MachineSnapshot};
use slackvm_model::{OversubLevel, PmConfig};
use slackvm_sim::{
    analyze_steady_state, run_packing_with_samples, DedicatedDeployment, DeploymentModel,
    SharedDeployment,
};
use slackvm_topology::builders;
use slackvm_workload::{TraceStats, Workload, WorkloadEvent};

/// Renders a markdown report for `workload` on workers of shape `host`.
///
/// Sections: trace statistics, dedicated-vs-shared replay comparison,
/// steady-state analysis of the shared replay, and the compaction
/// headroom at the trace's midpoint.
pub fn trace_report(workload: &Workload, host: PmConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# SlackVM trace report\n");

    // --- Trace statistics. ---
    let _ = writeln!(out, "## Trace\n");
    match TraceStats::of(workload) {
        None => {
            let _ = writeln!(out, "(empty trace)\n");
            return out;
        }
        Some(stats) => {
            let _ = writeln!(out, "- arrivals: {}", stats.arrivals);
            let _ = writeln!(out, "- peak population: {}", stats.peak_population);
            let _ = writeln!(
                out,
                "- mean request: {:.2} vCPU / {:.2} GiB",
                stats.mean_vcpus, stats.mean_mem_gib
            );
            let shares: Vec<String> = stats
                .level_shares
                .iter()
                .map(|(l, s)| format!("{l}:1 = {:.0}%", s * 100.0))
                .collect();
            let _ = writeln!(out, "- level shares: {}", shares.join(", "));
            let (p50, p90, p99) = stats.lifetime_percentiles;
            let _ = writeln!(
                out,
                "- lifetimes: p50 {:.1} h, p90 {:.1} h, p99 {:.1} h\n",
                p50 as f64 / 3600.0,
                p90 as f64 / 3600.0,
                p99 as f64 / 3600.0
            );
        }
    }

    // --- Replays. ---
    let levels: Vec<OversubLevel> = TraceStats::of(workload)
        .map(|s| {
            s.level_shares
                .keys()
                .map(|&n| OversubLevel::of(n))
                .collect()
        })
        .unwrap_or_default();
    let mut dedicated = DeploymentModel::Dedicated(DedicatedDeployment::new(host, levels));
    let base = slackvm_sim::run_packing(workload, &mut dedicated);
    let topology = Arc::new(builders::flat(host.cores));
    let mut shared_model =
        DeploymentModel::Shared(SharedDeployment::new(Arc::clone(&topology), host.mem_mib));
    let mut samples = Vec::new();
    let slack = run_packing_with_samples(workload, &mut shared_model, Some(&mut samples));
    let _ = writeln!(out, "## Packing ({host})\n");
    let _ = writeln!(
        out,
        "| model | PMs | peak stranded CPU | peak stranded mem |\n|---|---|---|---|"
    );
    for outcome in [&base, &slack] {
        let _ = writeln!(
            out,
            "| {} | {} | {:.1}% | {:.1}% |",
            outcome.model,
            outcome.opened_pms,
            outcome.at_peak.unallocated_cpu * 100.0,
            outcome.at_peak.unallocated_mem * 100.0
        );
    }
    let _ = writeln!(
        out,
        "\nSlackVM saves **{:.1}%** of PMs on this trace.\n",
        slack.savings_vs(&base)
    );

    // --- Steady state of the shared replay. ---
    let _ = writeln!(out, "## Steady state (shared pool)\n");
    match analyze_steady_state(&samples) {
        None => {
            let _ = writeln!(out, "(trace too short for steady-state analysis)\n");
        }
        Some(steady) => {
            let _ = writeln!(
                out,
                "- warm-up: {} samples, ends at t = {:.2} d",
                steady.warmup_samples,
                steady.warmup_end_secs as f64 / 86_400.0
            );
            let _ = writeln!(out, "- steady population: {:.1}", steady.mean_population);
            let _ = writeln!(
                out,
                "- steady stranding: cpu {:.1}%, mem {:.1}%\n",
                steady.mean_unallocated_cpu * 100.0,
                steady.mean_unallocated_mem * 100.0
            );
        }
    }

    // --- Compaction headroom at the trace midpoint. ---
    let horizon = workload.events.last().map_or(0, |(t, _)| *t);
    let midpoint = horizon / 2;
    let mut pool = SharedDeployment::new(topology, host.mem_mib);
    for (time, event) in &workload.events {
        if *time > midpoint {
            break;
        }
        match event {
            WorkloadEvent::Arrival(vm) => {
                let _ = pool.deploy(vm.id, vm.spec);
            }
            WorkloadEvent::Departure { id } => {
                if pool.cluster.location_of(*id).is_some() {
                    let _ = pool.remove(*id);
                }
            }
            WorkloadEvent::Resize { id, vcpus, mem_mib } => {
                let _ = pool.resize(*id, *vcpus, *mem_mib);
            }
        }
    }
    let snapshots: Vec<MachineSnapshot> =
        pool.cluster.hosts().iter().map(|h| h.snapshot()).collect();
    let plan = plan_compaction(&snapshots);
    let _ = writeln!(out, "## Migration headroom (trace midpoint)\n");
    let _ = writeln!(
        out,
        "- {} workers opened, {} active",
        pool.cluster.opened(),
        pool.cluster.active()
    );
    let _ = writeln!(
        out,
        "- compaction could drain {} worker(s) with {} migration(s)\n",
        plan.reclaimed_pms(),
        plan.moves.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_workload::scenarios;

    #[test]
    fn report_contains_every_section() {
        let workload = scenarios::paper_week_f(80).generate(3);
        let report = trace_report(&workload, PmConfig::simulation_host());
        for section in [
            "# SlackVM trace report",
            "## Trace",
            "## Packing",
            "## Steady state",
            "## Migration headroom",
            "SlackVM saves",
        ] {
            assert!(report.contains(section), "missing {section}");
        }
        assert!(report.contains("dedicated/first-fit"));
        assert!(report.contains("slackvm/"));
    }

    #[test]
    fn empty_trace_renders_a_stub() {
        let report = trace_report(&Workload::default(), PmConfig::simulation_host());
        assert!(report.contains("(empty trace)"));
        assert!(!report.contains("## Packing"));
    }

    #[test]
    fn report_is_deterministic() {
        let workload = scenarios::devtest_churn(60).generate(9);
        let a = trace_report(&workload, PmConfig::simulation_host());
        let b = trace_report(&workload, PmConfig::simulation_host());
        assert_eq!(a, b);
    }
}
