//! Fig. 4: PM savings across the oversubscription-share grid.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use slackvm_workload::{Catalog, LevelMix};

use super::packing::{compare_packing, PackingConfig};

/// One cell of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig4Cell {
    /// Share of 1:1 VMs (percent points, x-axis).
    pub p1: u32,
    /// Share of 2:1 VMs (percent points, y-axis).
    pub p2: u32,
    /// Share of 3:1 VMs (complement).
    pub p3: u32,
    /// PMs required by the dedicated baseline.
    pub baseline_pms: u32,
    /// PMs required by SlackVM.
    pub slackvm_pms: u32,
    /// Savings in percent.
    pub savings_pct: f64,
}

/// The full grid for one provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Grid {
    /// Provider label.
    pub provider: String,
    /// Grid step in percent points.
    pub step: u32,
    /// All cells (p1 + p2 ≤ 100).
    pub cells: Vec<Fig4Cell>,
}

impl Fig4Grid {
    /// The cell with the highest savings.
    pub fn best(&self) -> Option<&Fig4Cell> {
        self.cells
            .iter()
            .max_by(|a, b| a.savings_pct.total_cmp(&b.savings_pct))
    }

    /// The cell at given shares, if present.
    pub fn at(&self, p1: u32, p2: u32) -> Option<&Fig4Cell> {
        self.cells.iter().find(|c| c.p1 == p1 && c.p2 == p2)
    }

    /// Cells along the no-3:1 diagonal (p1 + p2 = 100), where the paper
    /// expects only marginal threshold-effect gains.
    pub fn no_level3_cells(&self) -> Vec<&Fig4Cell> {
        self.cells.iter().filter(|c| c.p3 == 0).collect()
    }
}

/// Computes Fig. 4 for a provider over the share grid with the given
/// `step` (25 reproduces the paper's 15 cells).
pub fn run_fig4(catalog: &Catalog, config: &PackingConfig, step: u32) -> Fig4Grid {
    let cells: Vec<Fig4Cell> = slackvm_workload::mix::simplex_grid(step)
        .into_par_iter()
        .map(|(p1, p2, p3)| {
            let mix = LevelMix::three_level(p1 as f64, p2 as f64, p3 as f64)
                .expect("grid cells have positive total");
            let cmp = compare_packing(catalog, &mix, config);
            Fig4Cell {
                p1,
                p2,
                p3,
                baseline_pms: cmp.baseline.opened_pms,
                slackvm_pms: cmp.slackvm.opened_pms,
                savings_pct: cmp.savings_pct(),
            }
        })
        .collect();
    Fig4Grid {
        provider: catalog.provider.clone(),
        step,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm_workload::catalog;

    fn quick_config() -> PackingConfig {
        PackingConfig {
            target_population: 400,
            ..PackingConfig::default()
        }
    }

    #[test]
    fn grid_has_expected_cells() {
        let grid = run_fig4(&catalog::ovhcloud(), &quick_config(), 50);
        // step 50 -> cells (0,0),(0,50),(0,100),(50,0),(50,50),(100,0).
        assert_eq!(grid.cells.len(), 6);
        assert!(grid.at(50, 0).is_some());
        assert!(grid.at(25, 0).is_none());
        assert_eq!(grid.no_level3_cells().len(), 3); // (0,100), (50,50), (100,0)
    }

    #[test]
    fn best_cell_exploits_complementarity() {
        let grid = run_fig4(&catalog::ovhcloud(), &quick_config(), 50);
        let best = grid.best().unwrap();
        // The best mix includes 3:1 VMs (the memory-biased tier that
        // complements CPU-bound premium VMs).
        assert!(best.p3 > 0, "best cell {best:?} lacks 3:1 VMs");
        assert!(best.savings_pct > 0.0);
    }

    #[test]
    fn savings_are_bounded_by_sanity() {
        let grid = run_fig4(&catalog::azure(), &quick_config(), 50);
        for cell in &grid.cells {
            assert!(
                (-10.0..=30.0).contains(&cell.savings_pct),
                "implausible savings {cell:?}"
            );
        }
    }
}
