//! # slackvm
//!
//! A from-scratch Rust reproduction of **"SlackVM: Packing Virtual
//! Machines in Oversubscribed Cloud Infrastructures"** (Jacquet, Ledoux,
//! Rouvoy — IEEE CLUSTER 2024).
//!
//! SlackVM lets VMs sold at different oversubscription levels (1:1
//! premium, 2:1, 3:1, …) share the same physical machines instead of
//! living in dedicated clusters. Two pieces make that work:
//!
//! - a **local scheduler** ([`slackvm_hypervisor`]) that partitions each
//!   machine's cores into per-level *vNodes*, resized dynamically with a
//!   cache-topology-aware core-distance metric (paper Algorithm 1);
//! - a **global scheduler metric** ([`slackvm_sched`]) scoring each
//!   candidate machine by how much a deployment would move its allocated
//!   Memory-per-Core ratio towards the hardware's ratio (paper
//!   Algorithm 2), so CPU-heavy and memory-heavy tiers end up
//!   *complementing* each other on the same host.
//!
//! This facade crate re-exports the workspace layers and adds the
//! [`experiments`] module, which regenerates every table and figure of
//! the paper's evaluation, plus [`report`] for rendering them.
//!
//! ## Quick start
//!
//! ```
//! use slackvm::prelude::*;
//! use std::sync::Arc;
//!
//! // A shared SlackVM pool of 32-core / 128 GiB workers...
//! let mut pool = SharedDeployment::new(Arc::new(flat(32)), gib(128));
//! // ...hosting a premium VM and a 3:1 VM on the same machine.
//! let premium = VmSpec::of(4, gib(8), OversubLevel::of(1));
//! let burst = VmSpec::of(6, gib(8), OversubLevel::of(3));
//! let mut model = DeploymentModel::Shared(pool);
//! let pm_a = model.deploy(VmId(0), premium).unwrap();
//! let pm_b = model.deploy(VmId(1), burst).unwrap();
//! assert_eq!(pm_a, pm_b); // co-hosted, isolated by vNodes
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod prelude;
pub mod report;

pub use slackvm_hypervisor as hypervisor;
pub use slackvm_model as model;
pub use slackvm_perf as perf;
pub use slackvm_sched as sched;
pub use slackvm_sim as sim;
pub use slackvm_telemetry as telemetry;
pub use slackvm_topology as topology;
pub use slackvm_workload as workload;
