//! Plain-text table rendering for experiment reports.

/// A simple fixed-width ASCII table builder.
///
/// Keeps the bench harness and examples free of formatting noise; the
/// output is stable enough to diff across runs.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        let rule: String = format!(
            "+{}+\n",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("+")
        );
        out.push_str(&rule);
        out.push_str(&fmt_row(&self.header, &widths));
        out.push_str(&rule);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out.push_str(&rule);
        out
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `42.3%`.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats milliseconds with two decimals, e.g. `3.47 ms`.
pub fn ms(value: f64) -> String {
    format!("{value:.2} ms")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "123456"]);
        let s = t.render();
        assert!(s.contains("| name  | value  |"));
        assert!(s.contains("| alpha | 1      |"));
        assert!(s.contains("| b     | 123456 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["only-one"]);
        let s = t.render();
        assert!(s.contains("only-one"));
        // Three columns rendered even though one cell was provided.
        assert_eq!(s.lines().nth(1).unwrap().matches('|').count(), 4);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.096), "9.6%");
        assert_eq!(ms(3.4712), "3.47 ms");
    }
}
