//! One-stop imports for applications using the SlackVM stack.

pub use slackvm_hypervisor::{
    plan_compaction, plan_compaction_recorded, recommend_level, recommend_level_recorded,
    render_layout, CompactionPlan, DynamicLevelConfig, Host, LevelRecommendation, MachineSnapshot,
    PhysicalMachine, UniformMachine, VNode, VirtualTopology,
};
pub use slackvm_model::{
    gib, mib, AllocView, MemPerCore, Millicores, OversubLevel, OversubPolicy, PmConfig, PmId,
    Resources, VmId, VmSpec,
};
pub use slackvm_perf::{
    calibrate, erlang_c, pooling_benefit, slowdown, CalibrationTargets, ContentionModel,
    Fig2Outcome, Fig2Scenario, MmcModel, Percentiles, Slo, SloPolicy, SlowdownCurve,
};
pub use slackvm_sched::{
    progress_score, AntiAffinityFilter, BestFitScorer, Candidate, CandidateIndex, CompositeScorer,
    CpuCeilingFilter, DotProductScorer, Filter, IndexMode, MaxVmsFilter, NormBasedGreedyScorer,
    PlacementPolicy, ProgressConfig, ProgressScorer, ResourceFilter, Scheduler, Scorer, VCluster,
    WorstFitScorer,
};
pub use slackvm_sim::{
    analyze_steady_state, run_packing, run_packing_compacting, run_packing_compacting_recorded,
    run_packing_observed, run_packing_recorded, run_packing_with_failures,
    run_packing_with_failures_recorded, run_packing_with_samples, store_from_samples, Cluster,
    ClusterObservables, ClusterSampler, CompactionStats, DedicatedDeployment, DeploymentModel,
    FailureStats, OccupancySample, PackingOutcome, SharedDeployment, SteadyStateSummary,
};
pub use slackvm_telemetry::{
    Event, Journal, MetricsRegistry, NullRecorder, Recorder, Sampler, Telemetry, TimeSeriesStore,
    TraceBuilder,
};
pub use slackvm_topology::builders::{dual_epyc_7662, flat, xeon, TopologyBuilder};
pub use slackvm_topology::{
    core_distance, topology_from_spec, CoreId, CpuTopology, DistanceMatrix,
};
pub use slackvm_workload::{
    catalog, scenarios, ArrivalModel, Catalog, CatalogError, CpuUsageModel, DistributionPoint,
    Flavor, LevelMix, LifetimeModel, RateShape, Scenario, TraceStats, UsageClass, VmInstance,
    Workload, WorkloadGenerator, WorkloadSpec,
};

pub use crate::experiments;
pub use crate::report;
