//! A minimal SVG document builder.
//!
//! Covers exactly the vocabulary the figure renderers need: rectangles,
//! lines, polylines, circles and text, with a fixed viewBox. Numeric
//! attributes are written with three decimals so output is compact and
//! deterministic.

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

/// Escapes text content for XML.
pub fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn num(value: f64) -> String {
    let rounded = (value * 1000.0).round() / 1000.0;
    if rounded == rounded.trunc() {
        format!("{}", rounded as i64)
    } else {
        format!("{rounded}")
    }
}

impl SvgDoc {
    /// Starts a document of the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        SvgDoc {
            width,
            height,
            body: String::new(),
        }
    }

    /// A filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) -> &mut Self {
        self.body.push_str(&format!(
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{fill}\"/>\n",
            num(x),
            num(y),
            num(w.max(0.0)),
            num(h.max(0.0)),
        ));
        self
    }

    /// A stroked line.
    pub fn line(
        &mut self,
        x1: f64,
        y1: f64,
        x2: f64,
        y2: f64,
        stroke: &str,
        width: f64,
    ) -> &mut Self {
        self.body.push_str(&format!(
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{stroke}\" stroke-width=\"{}\"/>\n",
            num(x1), num(y1), num(x2), num(y2), num(width),
        ));
        self
    }

    /// A polyline through data points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) -> &mut Self {
        if points.is_empty() {
            return self;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{},{}", num(*x), num(*y)))
            .collect();
        self.body.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{stroke}\" stroke-width=\"{}\"/>\n",
            pts.join(" "),
            num(width),
        ));
        self
    }

    /// A filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) -> &mut Self {
        self.body.push_str(&format!(
            "<circle cx=\"{}\" cy=\"{}\" r=\"{}\" fill=\"{fill}\"/>\n",
            num(cx),
            num(cy),
            num(r),
        ));
        self
    }

    /// Text anchored per `anchor` ("start", "middle", "end").
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, content: &str) -> &mut Self {
        self.body.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" font-size=\"{}\" font-family=\"sans-serif\" \
             text-anchor=\"{anchor}\" fill=\"#222\">{}</text>\n",
            num(x),
            num(y),
            num(size),
            escape(content),
        ));
        self
    }

    /// Finishes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {} {}\" \
             width=\"{}\" height=\"{}\">\n<rect width=\"{}\" height=\"{}\" fill=\"white\"/>\n{}</svg>\n",
            num(self.width),
            num(self.height),
            num(self.width),
            num(self.height),
            num(self.width),
            num(self.height),
            self.body,
        )
    }
}

/// The categorical palette used across the figures (color-blind safe).
pub mod palette {
    /// Baseline / first series.
    pub const BASELINE: &str = "#4477aa";
    /// SlackVM / second series.
    pub const SLACKVM: &str = "#ee6677";
    /// CPU series.
    pub const CPU: &str = "#228833";
    /// Memory series.
    pub const MEM: &str = "#ccbb44";
    /// Neutral grid lines.
    pub const GRID: &str = "#dddddd";
    /// Axis strokes.
    pub const AXIS: &str = "#444444";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut doc = SvgDoc::new(200.0, 100.0);
        doc.rect(10.0, 10.0, 30.0, 20.0, "#ff0000")
            .line(0.0, 0.0, 200.0, 100.0, "#000", 1.0)
            .circle(50.0, 50.0, 4.0, "#00ff00")
            .text(100.0, 95.0, 10.0, "middle", "hello & <world>");
        let out = doc.finish();
        assert!(out.starts_with("<svg "));
        assert!(out.ends_with("</svg>\n"));
        assert!(out.contains("viewBox=\"0 0 200 100\""));
        assert!(out.contains("<rect x=\"10\""));
        assert!(out.contains("hello &amp; &lt;world&gt;"));
    }

    #[test]
    fn numbers_are_compact_and_rounded() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(3.14159), "3.142");
        assert_eq!(num(-0.5), "-0.5");
    }

    #[test]
    fn negative_sizes_are_clamped() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.rect(0.0, 0.0, -5.0, 3.0, "#000");
        assert!(doc.clone().finish().contains("width=\"0\""));
    }

    #[test]
    fn empty_polyline_renders_nothing() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.polyline(&[], "#000", 1.0);
        assert!(!doc.finish().contains("polyline"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let mut doc = SvgDoc::new(50.0, 50.0);
            doc.polyline(&[(0.0, 0.0), (25.5, 12.345), (50.0, 50.0)], "#123456", 1.5);
            doc.finish()
        };
        assert_eq!(build(), build());
    }
}
