//! Figure renderers: experiment outputs → standalone SVG strings.

use slackvm::experiments::{Fig3Row, Fig4Grid};
use slackvm_perf::Fig2Outcome;
use slackvm_sim::OccupancySample;

use crate::scale::{diverging_color, LinearScale};
use crate::svg::{palette, SvgDoc};

const W: f64 = 760.0;
const H: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 60.0;

fn plot_area() -> (f64, f64, f64, f64) {
    (MARGIN_L, MARGIN_T, W - MARGIN_R, H - MARGIN_B)
}

fn y_axis(doc: &mut SvgDoc, scale: &LinearScale, unit: &str) {
    let (x0, _, x1, _) = plot_area();
    for tick in scale.ticks() {
        let y = scale.map(tick);
        doc.line(x0, y, x1, y, palette::GRID, 0.5);
        doc.text(x0 - 6.0, y + 3.0, 10.0, "end", &format!("{tick:.1}{unit}"));
    }
}

/// Renders the paper's Figure 2: per-level p90 response times, baseline
/// vs SlackVM, log-free dot-and-range plot over the per-VM p90
/// distributions.
pub fn fig2_svg(outcome: &Fig2Outcome) -> String {
    let (x0, y0, x1, y1) = plot_area();
    let mut doc = SvgDoc::new(W, H);
    doc.text(
        W / 2.0,
        20.0,
        13.0,
        "middle",
        "Fig. 2 — per-VM p90 response times (ms): baseline vs SlackVM",
    );
    let max_ms = outcome
        .levels
        .iter()
        .map(|l| l.baseline_dist.max.max(l.slackvm_dist.max))
        .fold(1.0f64, f64::max);
    let y = LinearScale::new((0.0, max_ms * 1.1), (y1, y0));
    y_axis(&mut doc, &y, "");

    let groups = outcome.levels.len() as f64;
    let group_w = (x1 - x0) / groups;
    for (i, row) in outcome.levels.iter().enumerate() {
        let cx = x0 + group_w * (i as f64 + 0.5);
        for (offset, dist, color, label) in [
            (
                -group_w * 0.15,
                &row.baseline_dist,
                palette::BASELINE,
                "base",
            ),
            (group_w * 0.15, &row.slackvm_dist, palette::SLACKVM, "slack"),
        ] {
            let x = cx + offset;
            // Range bar p50..max of the per-VM p90s, median dot.
            doc.line(x, y.map(dist.p50), x, y.map(dist.max), color, 2.0);
            doc.circle(x, y.map(dist.p50), 4.0, color);
            doc.text(
                x,
                y.map(dist.max) - 6.0,
                9.0,
                "middle",
                &format!("{label} {:.2}", dist.p50),
            );
        }
        doc.text(cx, y1 + 18.0, 11.0, "middle", &row.level.to_string());
    }
    doc.line(x0, y1, x1, y1, palette::AXIS, 1.0);
    doc.finish()
}

/// Renders the paper's Figure 3: unallocated CPU and memory shares per
/// distribution, baseline vs SlackVM (four bars per letter).
pub fn fig3_svg(rows: &[Fig3Row], provider: &str) -> String {
    let (x0, y0, x1, y1) = plot_area();
    let mut doc = SvgDoc::new(W, H);
    doc.text(
        W / 2.0,
        20.0,
        13.0,
        "middle",
        &format!("Fig. 3 — unallocated resources at peak ({provider})"),
    );
    let max_share = rows
        .iter()
        .flat_map(|r| [r.baseline_cpu, r.baseline_mem, r.slackvm_cpu, r.slackvm_mem])
        .fold(0.05f64, f64::max);
    let y = LinearScale::new((0.0, (max_share * 100.0) * 1.15), (y1, y0));
    y_axis(&mut doc, &y, "%");

    let groups = rows.len() as f64;
    let group_w = (x1 - x0) / groups;
    let bar_w = group_w / 5.5;
    for (i, row) in rows.iter().enumerate() {
        let gx = x0 + group_w * i as f64 + group_w * 0.1;
        let bars = [
            (row.baseline_cpu, palette::CPU, 1.0),
            (row.baseline_mem, palette::MEM, 1.0),
            (row.slackvm_cpu, palette::CPU, 0.55),
            (row.slackvm_mem, palette::MEM, 0.55),
        ];
        for (j, (share, color, opacity)) in bars.iter().enumerate() {
            let x = gx + bar_w * j as f64;
            let top = y.map(share * 100.0);
            // Encode opacity by blending towards white in the fill
            // (SVG opacity attribute would need another builder method).
            let fill = if *opacity < 1.0 {
                // SlackVM bars: outlined look via a lighter tone.
                match *color {
                    palette::CPU => "#88cc99",
                    _ => "#e4dba1",
                }
            } else {
                color
            };
            doc.rect(x, top, bar_w * 0.9, y1 - top, fill);
        }
        doc.text(
            gx + group_w * 0.4,
            y1 + 16.0,
            10.0,
            "middle",
            &row.letter.to_string(),
        );
    }
    doc.line(x0, y1, x1, y1, palette::AXIS, 1.0);
    // Legend.
    let legend = [
        ("baseline CPU", palette::CPU),
        ("baseline mem", palette::MEM),
        ("slackvm CPU", "#88cc99"),
        ("slackvm mem", "#e4dba1"),
    ];
    for (i, (label, color)) in legend.iter().enumerate() {
        let lx = x0 + 150.0 * i as f64;
        doc.rect(lx, y1 + 30.0, 10.0, 10.0, color);
        doc.text(lx + 14.0, y1 + 39.0, 10.0, "start", label);
    }
    doc.finish()
}

/// Renders the paper's Figure 4: the savings heatmap over the share
/// simplex (x: 1:1 share, y: 2:1 share).
pub fn fig4_svg(grid: &Fig4Grid) -> String {
    let (x0, y0, x1, y1) = plot_area();
    let mut doc = SvgDoc::new(W, H);
    doc.text(
        W / 2.0,
        20.0,
        13.0,
        "middle",
        &format!(
            "Fig. 4 — % PMs saved ({}, step {})",
            grid.provider, grid.step
        ),
    );
    let max_abs = grid
        .cells
        .iter()
        .map(|c| c.savings_pct.abs())
        .fold(1.0f64, f64::max);
    let steps = 100 / grid.step + 1;
    let cell_w = (x1 - x0) / steps as f64;
    let cell_h = (y1 - y0) / steps as f64;
    for cell in &grid.cells {
        let col = cell.p1 / grid.step;
        let row = cell.p2 / grid.step;
        let x = x0 + col as f64 * cell_w;
        // Higher 2:1 share towards the top.
        let y = y1 - (row + 1) as f64 * cell_h;
        doc.rect(
            x,
            y,
            cell_w * 0.95,
            cell_h * 0.92,
            &diverging_color(cell.savings_pct / max_abs),
        );
        doc.text(
            x + cell_w * 0.45,
            y + cell_h * 0.55,
            10.0,
            "middle",
            &format!("{:+.1}", cell.savings_pct),
        );
    }
    for i in 0..steps {
        let share = i * grid.step;
        doc.text(
            x0 + (i as f64 + 0.45) * cell_w,
            y1 + 16.0,
            10.0,
            "middle",
            &share.to_string(),
        );
        doc.text(
            x0 - 8.0,
            y1 - (i as f64 + 0.45) * cell_h,
            10.0,
            "end",
            &share.to_string(),
        );
    }
    doc.text(W / 2.0, H - 14.0, 11.0, "middle", "share of 1:1 VMs (%)");
    doc.text(16.0, y0 - 10.0, 11.0, "start", "share of 2:1 VMs (%)");
    doc.finish()
}

/// Renders an occupancy time series (alive VMs + unallocated shares) —
/// the view behind the steady-state analysis.
pub fn occupancy_svg(samples: &[OccupancySample], title: &str) -> String {
    let (x0, y0, x1, y1) = plot_area();
    let mut doc = SvgDoc::new(W, H);
    doc.text(W / 2.0, 20.0, 13.0, "middle", title);
    if samples.is_empty() {
        doc.text(W / 2.0, H / 2.0, 12.0, "middle", "(no samples)");
        return doc.finish();
    }
    let t_max = samples.last().map_or(1, |s| s.time_secs).max(1);
    let pop_max = samples
        .iter()
        .map(|s| s.alive_vms)
        .max()
        .unwrap_or(1)
        .max(1);
    let x = LinearScale::new((0.0, t_max as f64 / 86_400.0), (x0, x1));
    let y_pop = LinearScale::new((0.0, pop_max as f64 * 1.1), (y1, y0));
    let y_share = LinearScale::new((0.0, 1.0), (y1, y0));

    let pop_points: Vec<(f64, f64)> = samples
        .iter()
        .map(|s| {
            (
                x.map(s.time_secs as f64 / 86_400.0),
                y_pop.map(s.alive_vms as f64),
            )
        })
        .collect();
    let cpu_points: Vec<(f64, f64)> = samples
        .iter()
        .map(|s| {
            (
                x.map(s.time_secs as f64 / 86_400.0),
                y_share.map(s.unallocated_cpu),
            )
        })
        .collect();
    let mem_points: Vec<(f64, f64)> = samples
        .iter()
        .map(|s| {
            (
                x.map(s.time_secs as f64 / 86_400.0),
                y_share.map(s.unallocated_mem),
            )
        })
        .collect();
    doc.polyline(&pop_points, palette::BASELINE, 1.5);
    doc.polyline(&cpu_points, palette::CPU, 1.0);
    doc.polyline(&mem_points, palette::MEM, 1.0);
    y_axis(&mut doc, &y_pop, "");
    for day in 0..=(t_max / 86_400) {
        let px = x.map(day as f64);
        doc.text(px, y1 + 16.0, 10.0, "middle", &format!("d{day}"));
    }
    doc.line(x0, y1, x1, y1, palette::AXIS, 1.0);
    let legend = [
        ("alive VMs", palette::BASELINE),
        ("unallocated CPU (0-1)", palette::CPU),
        ("unallocated mem (0-1)", palette::MEM),
    ];
    for (i, (label, color)) in legend.iter().enumerate() {
        let lx = x0 + 180.0 * i as f64;
        doc.rect(lx, y1 + 30.0, 10.0, 10.0, color);
        doc.text(lx + 14.0, y1 + 39.0, 10.0, "start", label);
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm::experiments::{Fig4Cell, PackingConfig};
    use slackvm::perf::Fig2Scenario;

    #[test]
    fn fig2_svg_contains_all_levels() {
        let outcome = Fig2Scenario {
            step_secs: 2400,
            ..Fig2Scenario::default()
        }
        .run();
        let svg = fig2_svg(&outcome);
        assert!(svg.starts_with("<svg"));
        for level in ["1:1", "2:1", "3:1"] {
            assert!(svg.contains(level), "missing {level}");
        }
        assert_eq!(svg, fig2_svg(&outcome), "deterministic");
    }

    #[test]
    fn fig3_svg_renders_a_bar_per_series() {
        let rows = vec![Fig3Row {
            letter: 'F',
            shares: (50, 0, 50),
            baseline_cpu: 0.15,
            baseline_mem: 0.26,
            slackvm_cpu: 0.07,
            slackvm_mem: 0.20,
            baseline_pms: 41,
            slackvm_pms: 37,
        }];
        let svg = fig3_svg(&rows, "ovhcloud");
        assert!(svg.contains("ovhcloud"));
        // Four bars + legend swatches = at least 8 rects (plus canvas).
        assert!(svg.matches("<rect").count() >= 9);
        assert!(svg.contains(">F</text>"));
    }

    #[test]
    fn fig4_svg_renders_every_cell() {
        let grid = Fig4Grid {
            provider: "azure".into(),
            step: 50,
            cells: vec![
                Fig4Cell {
                    p1: 0,
                    p2: 0,
                    p3: 100,
                    baseline_pms: 10,
                    slackvm_pms: 10,
                    savings_pct: 0.0,
                },
                Fig4Cell {
                    p1: 50,
                    p2: 0,
                    p3: 50,
                    baseline_pms: 10,
                    slackvm_pms: 9,
                    savings_pct: 10.0,
                },
                Fig4Cell {
                    p1: 0,
                    p2: 50,
                    p3: 50,
                    baseline_pms: 10,
                    slackvm_pms: 11,
                    savings_pct: -10.0,
                },
            ],
        };
        let svg = fig4_svg(&grid);
        assert!(svg.contains("+10.0"));
        assert!(svg.contains("-10.0"));
        assert!(svg.contains("share of 1:1 VMs"));
        // Positive cells green-ish, negative blue-ish.
        assert!(svg.contains("#117733") || svg.contains("#118033") || svg.contains("#11"));
    }

    #[test]
    fn occupancy_svg_handles_empty_and_real_logs() {
        assert!(occupancy_svg(&[], "empty").contains("(no samples)"));
        let samples: Vec<OccupancySample> = (0..200u64)
            .map(|i| OccupancySample {
                time_secs: i * 3600,
                alive_vms: (i / 2) as u32,
                opened_pms: 5,
                unallocated_cpu: 0.3,
                unallocated_mem: 0.5,
            })
            .collect();
        let svg = occupancy_svg(&samples, "occupancy");
        assert!(svg.contains("occupancy"));
        assert_eq!(svg.matches("<polyline").count(), 3);
        assert!(svg.contains("d0") && svg.contains("d8"));
    }

    #[test]
    fn full_fig3_pipeline_to_svg() {
        let rows = slackvm::experiments::run_fig3(
            &slackvm::workload::catalog::azure(),
            &PackingConfig {
                target_population: 60,
                ..PackingConfig::default()
            },
        );
        let svg = fig3_svg(&rows, "azure");
        for letter in 'A'..='O' {
            assert!(svg.contains(&format!(">{letter}</text>")));
        }
    }
}
