//! Linear data→pixel scales and tick generation.

/// A linear mapping from a data domain onto a pixel range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearScale {
    domain: (f64, f64),
    range: (f64, f64),
}

impl LinearScale {
    /// Builds a scale. A degenerate domain (min == max) is widened by
    /// one unit so mapping stays finite.
    pub fn new(domain: (f64, f64), range: (f64, f64)) -> Self {
        let domain = if (domain.1 - domain.0).abs() < f64::EPSILON {
            (domain.0, domain.0 + 1.0)
        } else {
            domain
        };
        LinearScale { domain, range }
    }

    /// Maps a data value to pixels (extrapolates outside the domain).
    pub fn map(&self, value: f64) -> f64 {
        let t = (value - self.domain.0) / (self.domain.1 - self.domain.0);
        self.range.0 + t * (self.range.1 - self.range.0)
    }

    /// The data domain.
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }

    /// "Nice" tick positions covering the domain: 4–8 ticks at a
    /// 1/2/5×10^k step.
    pub fn ticks(&self) -> Vec<f64> {
        let (lo, hi) = self.domain;
        let span = hi - lo;
        let raw_step = span / 5.0;
        let mag = 10f64.powf(raw_step.abs().log10().floor());
        let norm = raw_step / mag;
        let step = if norm < 1.5 {
            mag
        } else if norm < 3.5 {
            2.0 * mag
        } else if norm < 7.5 {
            5.0 * mag
        } else {
            10.0 * mag
        };
        let first = (lo / step).ceil() * step;
        let mut ticks = Vec::new();
        let mut t = first;
        while t <= hi + step * 1e-9 {
            // Snap tiny float drift to zero.
            ticks.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
            t += step;
        }
        ticks
    }
}

/// A sequential color map from white to a saturated hue, for heatmaps.
/// `t` in `[0, 1]`.
pub fn heat_color(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    // White (255,255,255) -> deep green (17,119,51).
    let r = (255.0 + (17.0 - 255.0) * t) as u8;
    let g = (255.0 + (119.0 - 255.0) * t) as u8;
    let b = (255.0 + (51.0 - 255.0) * t) as u8;
    format!("#{r:02x}{g:02x}{b:02x}")
}

/// A diverging color map for signed values: blue (negative) through
/// white to green (positive). `t` in `[-1, 1]`.
pub fn diverging_color(t: f64) -> String {
    let t = t.clamp(-1.0, 1.0);
    if t >= 0.0 {
        heat_color(t)
    } else {
        let t = -t;
        let r = (255.0 + (68.0 - 255.0) * t) as u8;
        let g = (255.0 + (119.0 - 255.0) * t) as u8;
        let b = (255.0 + (170.0 - 255.0) * t) as u8;
        format!("#{r:02x}{g:02x}{b:02x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn maps_endpoints_and_midpoint() {
        let s = LinearScale::new((0.0, 10.0), (100.0, 300.0));
        assert_eq!(s.map(0.0), 100.0);
        assert_eq!(s.map(10.0), 300.0);
        assert_eq!(s.map(5.0), 200.0);
        // Inverted pixel ranges (SVG y axes) work too.
        let y = LinearScale::new((0.0, 1.0), (300.0, 50.0));
        assert_eq!(y.map(1.0), 50.0);
    }

    #[test]
    fn degenerate_domain_stays_finite() {
        let s = LinearScale::new((4.0, 4.0), (0.0, 100.0));
        assert!(s.map(4.0).is_finite());
    }

    #[test]
    fn ticks_are_nice() {
        let s = LinearScale::new((0.0, 100.0), (0.0, 1.0));
        assert_eq!(s.ticks(), vec![0.0, 20.0, 40.0, 60.0, 80.0, 100.0]);
        let s = LinearScale::new((0.0, 7.0), (0.0, 1.0));
        let ticks = s.ticks();
        assert_eq!(ticks.first(), Some(&0.0));
        assert!(ticks.len() >= 4 && ticks.len() <= 9, "{ticks:?}");
    }

    #[test]
    fn colors_are_hex() {
        assert_eq!(heat_color(0.0), "#ffffff");
        assert_eq!(heat_color(1.0), "#117733");
        assert_eq!(diverging_color(-1.0), "#4477aa");
        assert!(heat_color(0.5).starts_with('#'));
    }

    proptest! {
        #[test]
        fn mapping_is_monotone(a in -1e3f64..1e3, b in -1e3f64..1e3) {
            prop_assume!((b - a).abs() > 1e-6);
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let s = LinearScale::new((lo, hi), (0.0, 500.0));
            prop_assert!(s.map(lo) <= s.map((lo + hi) / 2.0));
            prop_assert!(s.map((lo + hi) / 2.0) <= s.map(hi));
        }

        #[test]
        fn ticks_lie_inside_the_domain(lo in -1e3f64..1e3, span in 0.1f64..1e3) {
            let s = LinearScale::new((lo, lo + span), (0.0, 1.0));
            for t in s.ticks() {
                prop_assert!(t >= lo - span * 1e-6 && t <= lo + span * (1.0 + 1e-6));
            }
        }

        #[test]
        fn heat_color_is_valid_for_all_t(t in -2.0f64..2.0) {
            let c = heat_color(t);
            prop_assert_eq!(c.len(), 7);
            prop_assert!(c.starts_with('#'));
        }
    }
}
