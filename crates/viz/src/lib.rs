//! # slackvm-viz
//!
//! Dependency-free SVG renderers for the experiment outputs, so the
//! paper's *figures* are regenerated as actual figures:
//!
//! - [`figures::fig2_svg`] — per-level response times, baseline vs
//!   SlackVM (the paper's Figure 2);
//! - [`figures::fig3_svg`] — unallocated CPU/memory shares across the
//!   distributions A..O (Figure 3);
//! - [`figures::fig4_svg`] — the PM-savings heatmap over the share
//!   simplex (Figure 4);
//! - [`figures::occupancy_svg`] — alive-population and stranding time
//!   series from a sample log (the steady-state view).
//!
//! The [`svg`] module is a minimal, allocation-friendly SVG document
//! builder; [`scale`] maps data ranges onto pixel ranges. Rendering is
//! deterministic: the same input produces byte-identical SVG.

#![warn(missing_docs)]

pub mod figures;
pub mod scale;
pub mod svg;
pub mod timeseries;

pub use figures::{fig2_svg, fig3_svg, fig4_svg, occupancy_svg};
pub use timeseries::gnuplot_script;
