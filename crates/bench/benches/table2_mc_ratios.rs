//! Regenerates paper Table II (M/C ratio of oversubscribed VMs) and
//! times the tier-ratio computation.

use criterion::{criterion_group, criterion_main, Criterion};
use slackvm::model::OversubLevel;
use slackvm::workload::catalog;
use slackvm_bench::banner;

fn print_table2() {
    banner("Table II — M/C ratio of oversubscribed VMs (GiB per physical core)");
    println!(
        "{:<10} {:>8} {:>8} {:>8} | paper",
        "dataset", "1:1", "2:1", "3:1"
    );
    for (cat, paper) in [
        (catalog::azure(), [2.1, 3.0, 4.5]),
        (catalog::ovhcloud(), [3.1, 3.9, 5.8]),
    ] {
        let r: Vec<f64> = (1..=3)
            .map(|n| cat.mc_ratio_at(OversubLevel::of(n)))
            .collect();
        println!(
            "{:<10} {:>8.1} {:>8.1} {:>8.1} | {:.1} / {:.1} / {:.1}",
            cat.provider, r[0], r[1], r[2], paper[0], paper[1], paper[2]
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table2();
    let cat = catalog::ovhcloud();
    c.bench_function("table2/mc_ratio_three_tiers", |b| {
        b.iter(|| {
            for n in 1..=3 {
                std::hint::black_box(cat.mc_ratio_at(OversubLevel::of(n)));
            }
        })
    });
    c.bench_function("table2/restricted_catalog", |b| {
        b.iter(|| std::hint::black_box(cat.restricted(slackvm::model::gib(8))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
