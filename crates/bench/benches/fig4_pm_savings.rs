//! Regenerates paper Fig. 4 (PM savings across the oversubscription
//! share grid, both providers) and times one grid cell.

use criterion::{criterion_group, criterion_main, Criterion};
use slackvm::experiments::{compare_packing, run_fig4};
use slackvm::workload::{catalog, LevelMix};
use slackvm_bench::{banner, bench_packing_config};

fn print_fig4() {
    let config = bench_packing_config();
    for cat in [catalog::azure(), catalog::ovhcloud()] {
        banner(&format!(
            "Fig. 4 — PM savings grid ({}, {} VMs)",
            cat.provider, config.target_population
        ));
        let grid = run_fig4(&cat, &config, 25);
        println!("rows: 2:1 share, columns: 1:1 share, cells: % PMs saved\n");
        print!("{:>6}", "");
        for p1 in [0u32, 25, 50, 75, 100] {
            print!("{p1:>8}");
        }
        println!();
        for p2 in [100u32, 75, 50, 25, 0] {
            print!("{p2:>6}");
            for p1 in [0u32, 25, 50, 75, 100] {
                match grid.at(p1, p2) {
                    Some(cell) => print!("{:>7.1}%", cell.savings_pct),
                    None => print!("{:>8}", ""),
                }
            }
            println!();
        }
        if let Some(best) = grid.best() {
            println!(
                "\nbest: {}/{}/{} -> {:.1}% ({} -> {} PMs); paper max: {}\n",
                best.p1,
                best.p2,
                best.p3,
                best.savings_pct,
                best.baseline_pms,
                best.slackvm_pms,
                if cat.provider == "ovhcloud" {
                    "9.6% (distribution F)"
                } else {
                    "8.8%"
                },
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    print_fig4();
    let config = bench_packing_config();
    let cat = catalog::azure();
    let mix = LevelMix::three_level(25.0, 25.0, 50.0).unwrap();
    c.bench_function("fig4/grid_cell_azure", |b| {
        b.iter(|| std::hint::black_box(compare_packing(&cat, &mix, &config)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
