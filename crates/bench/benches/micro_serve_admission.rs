//! Online admission throughput of the placement service.
//!
//! Drives the closed-loop bombard generator (paper-week-f arrival
//! shapes, sliding live-VM window) against an in-process
//! [`PlacementService`] at 1, 4, and 8 shards, plus a single-request
//! round-trip latency probe. Each iteration starts a fresh service so
//! runs are independent; the reported figure is the full
//! submit→route→batch→reply pipeline, not just the placement decision.
//! Record the observed decisions/sec in BENCH_serve.json when they
//! move (and note the host's core count — shard scaling is meaningless
//! on a single-core container).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slackvm_serve::{run_closed_loop, BombardConfig, ModelSpec, Op, PlacementService, ServeConfig};

fn service(shards: u32) -> PlacementService {
    PlacementService::start(ServeConfig {
        shards,
        model: ModelSpec::default_shared(),
        ..ServeConfig::default()
    })
    .expect("service start")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/admission");
    group.sample_size(10);

    for shards in [1u32, 4, 8] {
        let config = BombardConfig {
            population: 200,
            clients: shards.max(2),
            requests: 2_000,
            ..BombardConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("closed_loop", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let svc = service(shards);
                    let report = run_closed_loop(&svc, &config).expect("bombard");
                    std::hint::black_box(svc.stop());
                    std::hint::black_box(report)
                })
            },
        );
    }

    // One synchronous place→reply round trip on an idle single shard:
    // the latency floor under the throughput numbers above.
    group.bench_function("call_round_trip", |b| {
        let svc = service(1);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let spec = slackvm_model::VmSpec::of(
                2,
                slackvm_model::gib(4),
                slackvm_model::OversubLevel::of(2),
            );
            std::hint::black_box(
                svc.call(Op::Place {
                    id: slackvm_model::VmId(n),
                    spec,
                })
                .expect("call"),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
