//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. placement policy on the shared pool (first-fit / pure progress /
//!    progress+consolidation / best-fit / worst-fit);
//! 2. Algorithm 2 knobs (negative-score load factor, empty-PM-as-ideal);
//! 3. topology-driven vs naive core selection (vNode isolation);
//! 4. vNode pooling on/off (execution-span latency);
//! 5. memory-oversubscription headroom on a memory-bound mix.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use slackvm::hypervisor::{Host, PhysicalMachine};
use slackvm::model::{gib, OversubLevel, PmId, VmId, VmSpec};
use slackvm::perf::Fig2Scenario;
use slackvm::sched::{
    BestFitScorer, CompositeScorer, PlacementPolicy, ProgressConfig, ProgressScorer, WorstFitScorer,
};
use slackvm::sim::{run_packing, DedicatedDeployment, DeploymentModel, SharedDeployment};
use slackvm::topology::select::mean_cross_distance;
use slackvm::topology::{
    builders, DistanceMatrix, NaiveSelection, SelectionPolicy, TopologySelection,
};
use slackvm::workload::{
    catalog, ArrivalModel, DistributionPoint, WorkloadGenerator, WorkloadSpec,
};
use slackvm_bench::{banner, bench_packing_config};

fn workload(letter: char) -> slackvm::workload::Workload {
    let config = bench_packing_config();
    WorkloadGenerator::new(WorkloadSpec {
        catalog: catalog::ovhcloud(),
        mix: DistributionPoint::by_letter(letter).unwrap().mix(),
        arrivals: ArrivalModel::paper_week(config.target_population),
        seed: config.seed,
    })
    .generate()
}

fn shared_with(policy: PlacementPolicy, mem_mib: u64) -> DeploymentModel {
    DeploymentModel::Shared(SharedDeployment::with_policy(
        Arc::new(builders::flat(32)),
        mem_mib,
        policy,
    ))
}

fn ablation_scorers() {
    banner("Ablation 1 — placement policy on the shared pool (OVHcloud, dist F)");
    let w = workload('F');
    let mut baseline = DeploymentModel::Dedicated(DedicatedDeployment::new(
        bench_packing_config().host,
        [OversubLevel::of(1), OversubLevel::of(3)],
    ));
    let base = run_packing(&w, &mut baseline);
    println!("dedicated first-fit baseline: {} PMs", base.opened_pms);
    let policies: Vec<(&str, PlacementPolicy)> = vec![
        ("first-fit", PlacementPolicy::FirstFit),
        (
            "pure progress (paper Alg. 2)",
            PlacementPolicy::scored(ProgressScorer::paper()),
        ),
        (
            "progress + 0.15 best-fit (default)",
            PlacementPolicy::scored(CompositeScorer::progress_with_consolidation(0.15)),
        ),
        ("best-fit", PlacementPolicy::scored(BestFitScorer)),
        ("worst-fit", PlacementPolicy::scored(WorstFitScorer)),
    ];
    for (name, policy) in policies {
        let out = run_packing(&w, &mut shared_with(policy, gib(128)));
        println!(
            "shared {name:<36} {:>4} PMs ({:+.1}% vs baseline)",
            out.opened_pms,
            out.savings_vs(&base)
        );
    }
}

fn ablation_knobs() {
    banner("Ablation 2 — Algorithm 2 knobs (OVHcloud, dist E)");
    let w = workload('E');
    let variants = [
        (
            "paper (both on)",
            ProgressConfig {
                negative_load_factor: true,
                empty_pm_is_ideal: true,
            },
        ),
        (
            "no negative load factor",
            ProgressConfig {
                negative_load_factor: false,
                empty_pm_is_ideal: true,
            },
        ),
        (
            "no empty-PM-is-ideal",
            ProgressConfig {
                negative_load_factor: true,
                empty_pm_is_ideal: false,
            },
        ),
        (
            "both off",
            ProgressConfig {
                negative_load_factor: false,
                empty_pm_is_ideal: false,
            },
        ),
    ];
    for (name, knobs) in variants {
        let policy = PlacementPolicy::scored(ProgressScorer { knobs });
        let out = run_packing(&w, &mut shared_with(policy, gib(128)));
        println!("{name:<28} {:>4} PMs", out.opened_pms);
    }
}

fn ablation_topology() {
    banner("Ablation 3 — topology-driven vs naive core selection (dual EPYC)");
    let topo = Arc::new(builders::dual_epyc_7662());
    let matrix = DistanceMatrix::build(&topo);
    for (name, policy) in [
        (
            "topology",
            Arc::new(TopologySelection::new(DistanceMatrix::build(&topo)))
                as Arc<dyn SelectionPolicy + Send + Sync>,
        ),
        (
            "naive",
            Arc::new(NaiveSelection) as Arc<dyn SelectionPolicy + Send + Sync>,
        ),
    ] {
        let mut m = PhysicalMachine::new(PmId(0), Arc::clone(&topo), gib(1024), policy);
        for i in 0..60u64 {
            let level = OversubLevel::of((i % 3 + 1) as u32);
            m.deploy(VmId(i), VmSpec::of(2, gib(4), level)).unwrap();
        }
        let spans: Vec<Vec<_>> = m.vnodes().map(|v| v.core_vec()).collect();
        let isolation = mean_cross_distance(&matrix, &spans[0], &spans[2]);
        let locality: f64 = spans
            .iter()
            .map(|s| {
                if s.len() < 2 {
                    return 0.0;
                }
                mean_cross_distance(&matrix, s, s)
            })
            .sum::<f64>()
            / spans.len() as f64;
        println!(
            "{name:<9} inter-vNode distance (1:1 vs 3:1): {isolation:>5.1}, \
             mean intra-vNode distance: {locality:>5.1}, churn: {:?}",
            m.churn()
        );
    }
    println!("(higher inter-vNode distance = better isolation; lower intra = better locality)");
}

fn ablation_pooling() {
    banner("Ablation 4 — vNode pooling on/off (Fig. 2 scenario, coarse)");
    for pooling in [true, false] {
        let out = Fig2Scenario {
            pooling,
            step_secs: 1200,
            ..Fig2Scenario::default()
        }
        .run();
        let l3 = &out.levels[2];
        println!(
            "pooling {:<5} -> 3:1 latency {:.2} ms (x{:.2}), spans: {:?}",
            pooling, l3.slackvm_ms, l3.overhead, out.slackvm_span_threads
        );
    }
    println!(
        "(on the saturated machine the pooled union cannot honour 2:1, so\n\
         the conservative fallback leaves vNodes separate; the partial-load\n\
         study below is where pooling pays)"
    );
    for fill in [0.4f64, 0.55, 0.7] {
        let out = slackvm::perf::pooling_benefit(0xB00, fill, 1.16);
        println!(
            "fill {:>4.0}% -> 3:1 p90 pooled {:.2} ms vs unpooled {:.2} ms \
             (benefit x{:.2}; span {} vs {} threads)",
            out.fill_fraction * 100.0,
            out.pooled_ms,
            out.unpooled_ms,
            out.benefit(),
            out.pooled_span_threads,
            out.vnode_threads,
        );
    }
}

fn ablation_curve() {
    banner("Ablation 5b — contention curve: convex default vs M/M/c (Fig. 2, coarse)");
    for (name, curve) in [
        ("convex", slackvm::perf::SlowdownCurve::Convex),
        ("M/M/c", slackvm::perf::SlowdownCurve::Mmc),
    ] {
        let out = Fig2Scenario {
            step_secs: 1200,
            curve,
            ..Fig2Scenario::default()
        }
        .run();
        let fmt = |i: usize| {
            format!(
                "{:.2}->{:.2} (x{:.2})",
                out.levels[i].baseline_ms, out.levels[i].slackvm_ms, out.levels[i].overhead
            )
        };
        println!("{name:<8} 1:1 {} | 2:1 {} | 3:1 {}", fmt(0), fmt(1), fmt(2));
    }
}

fn ablation_compaction() {
    banner("Ablation 6 — reclaimable fragmentation (compaction analysis, OVH dist F)");
    // Replay the first half of the week on a shared pool, then ask the
    // offline planner (the paper's future-work migration knob) what it
    // could drain.
    let w = workload('F');
    let mut shared = SharedDeployment::new(Arc::new(builders::flat(32)), gib(128));
    for (time, event) in &w.events {
        if *time > (bench_packing_config().target_population as u64).min(4) * 86_400 {
            break;
        }
        match event {
            slackvm::workload::WorkloadEvent::Arrival(vm) => {
                shared.deploy(vm.id, vm.spec).unwrap();
            }
            slackvm::workload::WorkloadEvent::Departure { id } => {
                if shared.cluster.location_of(*id).is_some() {
                    shared.remove(*id).unwrap();
                }
            }
            slackvm::workload::WorkloadEvent::Resize { id, vcpus, mem_mib } => {
                let _ = shared.resize(*id, *vcpus, *mem_mib);
            }
        }
    }
    let snapshots: Vec<slackvm::hypervisor::MachineSnapshot> = shared
        .cluster
        .hosts()
        .iter()
        .map(|h| h.snapshot())
        .collect();
    let plan = slackvm::hypervisor::plan_compaction(&snapshots);
    println!(
        "mid-week: {} workers opened, {} active; compaction would drain {} \
         worker(s) with {} migration(s)",
        shared.cluster.opened(),
        shared.cluster.active(),
        plan.reclaimed_pms(),
        plan.moves.len(),
    );
}

fn ablation_memory_oversub() {
    banner("Ablation 5 — memory-oversubscription headroom (OVHcloud, dist O)");
    let w = workload('O');
    for ratio in [1.0f64, 1.25, 1.5] {
        let mem = (gib(128) as f64 * ratio) as u64;
        let policy = PlacementPolicy::scored(CompositeScorer::progress_with_consolidation(0.15));
        let out = run_packing(&w, &mut shared_with(policy, mem));
        println!(
            "mem ratio {ratio:.2} -> {:>4} PMs (unallocated cpu at peak: {:.1}%)",
            out.opened_pms,
            out.at_peak.unallocated_cpu * 100.0
        );
    }
    println!("(distribution O is memory-bound: exposing mem headroom reclaims stranded CPU)");
}

fn ablation_migration_cadence() {
    banner("Ablation 8 — compaction (migration) cadence (OVH dist F)");
    let cfg = bench_packing_config();
    let mix = DistributionPoint::by_letter('F').unwrap().mix();
    let cat = catalog::ovhcloud();
    let plain = slackvm::experiments::compare_packing(&cat, &mix, &cfg);
    println!(
        "no migration: baseline {} PMs, slackvm {} PMs ({:+.1}%)",
        plain.baseline.opened_pms,
        plain.slackvm.opened_pms,
        plain.savings_pct()
    );
    for hours in [6u64, 12, 24, 48] {
        let (cmp, stats) =
            slackvm::experiments::compare_packing_with_compaction(&cat, &mix, &cfg, hours * 3600);
        println!(
            "every {hours:>2} h: slackvm {} PMs ({:+.1}%), {} migrations in {} rounds",
            cmp.slackvm.opened_pms,
            cmp.savings_pct(),
            stats.migrations,
            stats.rounds,
        );
    }
}

fn ablation_scorer_families() {
    banner("Ablation 9 — vector-bin-packing scorer families (OVH dist I, shared pool)");
    let w = workload('I');
    let mut baseline = DeploymentModel::Dedicated(DedicatedDeployment::new(
        bench_packing_config().host,
        [
            OversubLevel::of(1),
            OversubLevel::of(2),
            OversubLevel::of(3),
        ],
    ));
    let base = run_packing(&w, &mut baseline);
    println!("dedicated first-fit baseline: {} PMs", base.opened_pms);
    let policies: Vec<(&str, PlacementPolicy)> = vec![
        (
            "progress (Alg. 2)",
            PlacementPolicy::scored(ProgressScorer::paper()),
        ),
        (
            "progress + consolidation",
            PlacementPolicy::scored(CompositeScorer::progress_with_consolidation(0.15)),
        ),
        (
            "dot-product (VBP, ref [25])",
            PlacementPolicy::scored(slackvm::sched::DotProductScorer),
        ),
        (
            "norm-based greedy (VBP, ref [25])",
            PlacementPolicy::scored(slackvm::sched::NormBasedGreedyScorer),
        ),
    ];
    for (name, policy) in policies {
        let out = run_packing(&w, &mut shared_with(policy, gib(128)));
        println!(
            "shared {name:<34} {:>4} PMs ({:+.1}% vs baseline)",
            out.opened_pms,
            out.savings_vs(&base)
        );
    }
}

fn ablation_sensitivity() {
    banner("Ablation 7 — sensitivity sweeps (OVH dist F)");
    let cfg = bench_packing_config();
    let mix = DistributionPoint::by_letter('F').unwrap().mix();
    let cat = catalog::ovhcloud();
    println!("hardware M/C sweep (32 cores, varying DRAM):");
    for row in slackvm::experiments::hardware_mc_sweep(&cat, &mix, &cfg, &[64, 96, 128, 192, 256]) {
        println!(
            "  {:>3} GiB (M/C {:>3.0}) -> baseline {:>3}, slackvm {:>3} ({:+.1}%)",
            row.mem_gib, row.target_ratio, row.baseline_pms, row.slackvm_pms, row.savings_pct
        );
    }
    println!("seed replication (5 seeds):");
    let stats = slackvm::experiments::replicated_savings(&cat, &mix, &cfg, &[1, 2, 3, 4, 5]);
    println!(
        "  savings {:.1}% ± {:.1} (min {:.1}, max {:.1})",
        stats.mean, stats.std_dev, stats.min, stats.max
    );
}

fn bench(c: &mut Criterion) {
    ablation_scorers();
    ablation_knobs();
    ablation_topology();
    ablation_pooling();
    ablation_memory_oversub();
    ablation_curve();
    ablation_compaction();
    ablation_sensitivity();
    ablation_migration_cadence();
    ablation_scorer_families();

    let w = workload('F');
    c.bench_function("ablation/shared_replay_F", |b| {
        b.iter(|| {
            let mut model = shared_with(
                PlacementPolicy::scored(CompositeScorer::progress_with_consolidation(0.15)),
                gib(128),
            );
            std::hint::black_box(run_packing(&w, &mut model))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
