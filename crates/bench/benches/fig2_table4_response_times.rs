//! Regenerates paper Table IV and Fig. 2 (response times per
//! oversubscription level, dedicated machines vs SlackVM co-hosting)
//! and times the contention-model replay.

use criterion::{criterion_group, criterion_main, Criterion};
use slackvm::experiments::physical::{render_fig2, render_table4};
use slackvm::perf::Fig2Scenario;
use slackvm_bench::banner;

fn print_results() {
    banner("Table IV — median of per-VM p90 response times");
    let outcome = Fig2Scenario::default().run();
    println!("{}", render_table4(&outcome));
    banner("Fig. 2 — per-VM p90 distributions");
    println!("{}", render_fig2(&outcome));
}

fn print_calibration() {
    use slackvm::perf::{calibrate, CalibrationTargets};
    banner("Calibration — fitting (base latency, pressure coeff) to the paper's Table IV");
    let fit = calibrate(&CalibrationTargets::paper_table4(), 2400);
    println!(
        "fitted base {:.2} ms, pressure coeff {:.1} (residual {:.3})",
        fit.base_latency_ms, fit.pressure_coeff, fit.residual
    );
    for (i, (b, s)) in fit.fitted_medians.iter().enumerate() {
        println!("  level {}: fitted {b:.2} -> {s:.2} ms", i + 1);
    }
}

fn bench(c: &mut Criterion) {
    print_results();
    print_calibration();
    // A coarser replay for timing (the printed run above uses the
    // default 120 s steps).
    let scenario = Fig2Scenario {
        step_secs: 1200,
        ..Fig2Scenario::default()
    };
    c.bench_function("fig2/scenario_replay_coarse", |b| {
        b.iter(|| std::hint::black_box(scenario.run()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
