//! Micro-benchmarks of the incremental placement index against the
//! naive full-fleet rescan it replaces: per-event candidate assembly,
//! dirty-slot refresh, and an end-to-end replay A/B at fleet scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slackvm::model::{gib, AllocView, Millicores, OversubLevel, PmConfig, PmId, VmSpec};
use slackvm::prelude::{
    run_packing, scenarios, DeploymentModel, SharedDeployment, WorkloadGenerator, WorkloadSpec,
};
use slackvm::sched::{AdmissionKey, Candidate, CandidateIndex, IndexMode};
use slackvm::topology::builders::flat;
use slackvm::workload::ArrivalModel;
use std::sync::Arc;

fn candidates(n: u32) -> Vec<Candidate> {
    (0..n)
        .map(|i| Candidate {
            id: PmId(i),
            config: PmConfig::simulation_host(),
            alloc: AllocView::new(Millicores::from_cores(i % 32), gib(((i * 7) % 128) as u64)),
            vms: (i % 9) as usize,
        })
        .collect()
}

fn key_of(c: &Candidate) -> AdmissionKey {
    AdmissionKey {
        free_mem_mib: c.config.mem_mib.saturating_sub(c.alloc.mem_mib),
        free_vcpus: None,
    }
}

fn populated_index(n: u32) -> CandidateIndex {
    let mut index = CandidateIndex::new();
    for c in candidates(n) {
        let key = key_of(&c);
        index.upsert(c, key);
    }
    index
}

fn bench(c: &mut Criterion) {
    // Two admission regimes: a small VM almost every PM can take (the
    // gather degenerates to a full scan) and a large VM only the
    // near-empty tail of the fleet can take (the bucket scan skips the
    // packed majority).
    let small = VmSpec::of(2, gib(12), OversubLevel::of(3));
    let large = VmSpec::of(16, gib(112), OversubLevel::of(3));

    // Per-event candidate assembly: naive rebuild (filter + collect the
    // whole fleet) vs the index's gate-filtered gather.
    let mut group = c.benchmark_group("index/gather");
    for (regime, vm) in [("dense", small), ("selective", large)] {
        for n in [128u32, 1024, 8192] {
            let fleet = candidates(n);
            let label = format!("{regime}/{n}");
            group.bench_with_input(
                BenchmarkId::new("naive_rebuild", &label),
                &fleet,
                |b, fleet| {
                    b.iter(|| {
                        let buf: Vec<Candidate> = fleet
                            .iter()
                            .filter(|c| c.config.mem_mib - c.alloc.mem_mib >= vm.mem_mib())
                            .cloned()
                            .collect();
                        std::hint::black_box(buf.len())
                    })
                },
            );
            let index = populated_index(n);
            group.bench_with_input(BenchmarkId::new("indexed", &label), &index, |b, index| {
                let mut buf = Vec::new();
                b.iter(|| {
                    buf.clear();
                    let stats = index.gather_into(&mut buf, vm.mem_mib(), vm.vcpus());
                    std::hint::black_box((buf.len(), stats.admitted))
                })
            });
        }
    }
    group.finish();

    // The dirty-tracking write path: one slot refresh per mutation.
    let mut group = c.benchmark_group("index/refresh");
    for n in [1024u32, 8192] {
        let index = populated_index(n);
        group.bench_with_input(BenchmarkId::new("upsert", n), &n, |b, &n| {
            let mut index = index.clone();
            let mut i = 0u32;
            b.iter(|| {
                let id = PmId(i % n);
                let c = Candidate {
                    id,
                    config: PmConfig::simulation_host(),
                    alloc: AllocView::new(Millicores::from_cores(i % 32), gib((i % 96) as u64)),
                    vms: (i % 9) as usize,
                };
                let key = key_of(&c);
                index.upsert(c, key);
                i = i.wrapping_add(1);
            })
        });
    }
    group.finish();

    // End-to-end: one day of week-F arrivals through the shared pool,
    // naive vs incremental. Decision-identity is guarded by tests; this
    // measures the wall-clock gap the index buys.
    let scenario = scenarios::paper_week_f(200);
    let workload = WorkloadGenerator::new(WorkloadSpec {
        catalog: scenario.catalog.clone(),
        mix: scenario.mix.clone(),
        arrivals: ArrivalModel::constant(200, 86_400, 86_400),
        seed: 42,
    })
    .generate();
    let mut group = c.benchmark_group("index/replay_day_f");
    group.sample_size(10);
    for mode in [IndexMode::Naive, IndexMode::Incremental] {
        group.bench_with_input(
            BenchmarkId::new("shared", mode.name()),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let mut model = DeploymentModel::Shared(SharedDeployment::new(
                        Arc::new(flat(32)),
                        gib(128),
                    ))
                    .with_index_mode(mode);
                    std::hint::black_box(run_packing(&workload, &mut model))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
