//! Planning cost of the background hotspot-mitigation pass.
//!
//! The online executor scores every opened PM and computes a
//! mitigation plan inside the shard worker's tick, between admission
//! batches — so the score+plan latency is the number that decides how
//! aggressive `--pressure-every-ms` can be. This bench replays a
//! mid-week prefix of the paper's week-F trace into both deployment
//! models, synthesizes the skewed usage signal through the estimator
//! pipeline exactly the way the serve tick does, and measures the
//! scorer alone (`score_pressure`: one fleet sweep with hysteresis
//! classification) and the full plan pipeline (`plan_mitigation`:
//! score, shadow clone, hottest-first drain through the candidate
//! index). Record medians in BENCH_replay.json when they move, noting
//! fleet size next to each figure — both passes scale with live PMs,
//! not with trace length.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slackvm::prelude::*;
use slackvm_pressure::{
    observe_model, plan_mitigation, score_pressure, synth_frac, EstimatorConfig, PressureConfig,
    UsageTracker,
};
use slackvm_rebalance::Budget;
use slackvm_workload::{scenarios, WorkloadEvent};

/// Replays the first 60% of a seeded week-F trace — mid-week, after
/// the departure tail has punched holes in the packing — and returns
/// the fragmented fleet.
fn fragmented(dedicated: bool, population: u32) -> DeploymentModel {
    let mut model = if dedicated {
        DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::of(32, gib(128)),
            [
                OversubLevel::of(1),
                OversubLevel::of(2),
                OversubLevel::of(3),
            ],
        ))
    } else {
        DeploymentModel::Shared(SharedDeployment::with_policy(
            std::sync::Arc::new(flat(32)),
            gib(128),
            PlacementPolicy::FirstFit,
        ))
    };
    let trace = scenarios::paper_week_f(population).generate(42);
    let cutoff = trace.events.len() * 3 / 5;
    for (_at, event) in trace.events.iter().take(cutoff) {
        match event {
            WorkloadEvent::Arrival(vm) => {
                let _ = model.deploy(vm.id, vm.spec);
            }
            WorkloadEvent::Departure { id } => {
                if model.location_of(*id).is_some() {
                    model.remove(*id).expect("located VM removes");
                }
            }
            WorkloadEvent::Resize { .. } => {}
        }
    }
    model.check_invariants().expect("replayed state is legal");
    model
}

fn bench(c: &mut Criterion) {
    let budget = Budget::default();
    let config = PressureConfig::default();
    let mut group = c.benchmark_group("pressure");

    for population in [200u32, 1000] {
        for (flavor, dedicated) in [("shared", false), ("dedicated", true)] {
            let model = fragmented(dedicated, population);
            // The same skew the serve tick synthesizes: half the fleet
            // pinned hot, demands folded through the estimator.
            let mut tracker = UsageTracker::new(EstimatorConfig::default());
            observe_model(&mut tracker, &model, |vm| synth_frac(42, vm, 0.5));
            let label = format!("{flavor}/{population}/pms{}", model.active_pms());
            group.bench_with_input(
                BenchmarkId::new("score", &label),
                &(&model, &tracker),
                |b, (model, tracker)| {
                    b.iter(|| {
                        std::hint::black_box(score_pressure(
                            model,
                            &config,
                            &|vm| tracker.demand(vm),
                            &BTreeMap::new(),
                        ))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("plan", &label),
                &(&model, &tracker),
                |b, (model, tracker)| {
                    b.iter(|| {
                        std::hint::black_box(
                            plan_mitigation(model, &config, &budget, &|vm| tracker.demand(vm))
                                .expect("planner runs"),
                        )
                    })
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
