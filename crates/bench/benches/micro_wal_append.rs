//! Per-decision cost of the write-ahead log.
//!
//! Appends placement decisions through [`WalWriter`] under each fsync
//! policy, one commit per record (the worst case: a batch of one, as a
//! synchronous client produces) and one commit per 64-record batch
//! (what a loaded shard actually does). The spread between `off` and
//! `every` is the price of the durability guarantee; `interval` shows
//! the bounded-loss middle ground. Record medians in BENCH_serve.json
//! when they move, noting the fsync policy next to each figure — an
//! `off` number quoted as WAL overhead would be a lie.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slackvm_durable::{FsyncPolicy, WalOp, WalOutcome, WalRecord, WalWriter};
use slackvm_model::{gib, OversubLevel, PmId, VmId, VmSpec};

/// A fresh WAL in a unique scratch file.
fn writer(tag: &str, policy: FsyncPolicy) -> WalWriter {
    let path = std::env::temp_dir().join(format!(
        "slackvm-bench-wal-{tag}-{}-{}.log",
        policy.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    WalWriter::open(&path, 0, policy).expect("wal opens")
}

fn record(seq: u64) -> WalRecord {
    WalRecord {
        seq,
        op: WalOp::Place {
            id: VmId(seq),
            spec: VmSpec::of(2, gib(4), OversubLevel::of(2)),
        },
        outcome: WalOutcome::Placed(PmId((seq % 64) as u32)),
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("durable/wal");
    let policies = [
        ("off", FsyncPolicy::Off),
        (
            "interval50ms",
            FsyncPolicy::Interval(Duration::from_millis(50)),
        ),
        ("every", FsyncPolicy::Every),
    ];

    for (name, policy) in policies {
        group.bench_with_input(
            BenchmarkId::new("append_commit_1", name),
            &policy,
            |b, &policy| {
                let mut wal = writer("single", policy);
                let mut seq = 0u64;
                b.iter(|| {
                    seq += 1;
                    wal.append(&record(seq)).expect("append");
                    std::hint::black_box(wal.commit().expect("commit"))
                })
            },
        );
    }

    for (name, policy) in policies {
        group.bench_with_input(
            BenchmarkId::new("append_commit_64", name),
            &policy,
            |b, &policy| {
                let mut wal = writer("batch", policy);
                let mut seq = 0u64;
                b.iter(|| {
                    for _ in 0..64 {
                        seq += 1;
                        wal.append(&record(seq)).expect("append");
                    }
                    std::hint::black_box(wal.commit().expect("commit"))
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
