//! Regenerates paper Table I (average vCPU & vRAM requests per VM) and
//! times the catalog statistics plus weighted sampling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use slackvm::workload::catalog;
use slackvm_bench::banner;

fn print_table1() {
    banner("Table I — average vCPU & vRAM requests per VM");
    println!(
        "{:<10} {:>12} {:>12} | paper: vCPU / vRAM",
        "dataset", "mean vCPU", "mean vRAM"
    );
    for (cat, pv, pm) in [
        (catalog::azure(), 2.25, 4.8),
        (catalog::ovhcloud(), 3.24, 10.05),
    ] {
        println!(
            "{:<10} {:>12.2} {:>9.2} GiB | paper: {:.2} / {:.2} GB",
            cat.provider,
            cat.mean_vcpus(),
            cat.mean_mem_gib(),
            pv,
            pm
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table1();
    let azure = catalog::azure();
    let ovh = catalog::ovhcloud();

    c.bench_function("table1/catalog_means", |b| {
        b.iter(|| {
            std::hint::black_box(azure.mean_vcpus() + azure.mean_mem_gib());
            std::hint::black_box(ovh.mean_vcpus() + ovh.mean_mem_gib());
        })
    });

    c.bench_function("table1/weighted_sample_1k", |b| {
        b.iter_batched(
            || rand_chacha::ChaCha8Rng::seed_from_u64(1),
            |mut rng| {
                for _ in 0..1000 {
                    std::hint::black_box(azure.sample(&mut rng));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
