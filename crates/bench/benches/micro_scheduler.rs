//! Micro-benchmarks of the global-scheduler hot path: Algorithm 2
//! scoring and candidate selection at control-plane scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slackvm::model::{gib, AllocView, Millicores, OversubLevel, PmConfig, PmId, VmSpec};
use slackvm::sched::{progress_score, Candidate, PlacementPolicy, ProgressConfig, ProgressScorer};

fn candidates(n: u32) -> Vec<Candidate> {
    (0..n)
        .map(|i| Candidate {
            id: PmId(i),
            config: PmConfig::simulation_host(),
            alloc: AllocView::new(Millicores::from_cores(i % 32), gib(((i * 7) % 128) as u64)),
            vms: (i % 9) as usize,
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let cfg = PmConfig::simulation_host();
    let alloc = AllocView::new(Millicores::from_cores(10), gib(20));
    let vm = VmSpec::of(2, gib(12), OversubLevel::of(3));
    let knobs = ProgressConfig::default();

    c.bench_function("sched/progress_score_single", |b| {
        b.iter(|| std::hint::black_box(progress_score(&cfg, &alloc, &vm, knobs)))
    });

    let mut group = c.benchmark_group("sched/select");
    for n in [16u32, 128, 1024, 8192] {
        let cands = candidates(n);
        let scored = PlacementPolicy::scored(ProgressScorer::paper());
        group.bench_with_input(BenchmarkId::new("progress", n), &cands, |b, cands| {
            b.iter(|| std::hint::black_box(scored.select(cands, &vm)))
        });
        let ff = PlacementPolicy::FirstFit;
        group.bench_with_input(BenchmarkId::new("first_fit", n), &cands, |b, cands| {
            b.iter(|| std::hint::black_box(ff.select(cands, &vm)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
