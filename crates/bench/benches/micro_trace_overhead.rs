//! Cost of the request-scoped tracing plane.
//!
//! The same synchronous place→reply round trip on an idle single
//! shard, measured at each [`TraceLevel`]: `off` (one clock read per
//! batch — the pre-tracing hot path), `stages` (the default: two extra
//! clock reads per request, folded into the stage histograms), and
//! `sampled` at 1-in-1 (every request additionally emits five
//! Chrome-trace spans and feeds the slow-request digest — the
//! worst-case sampling bill, real deployments run 1-in-N). A closed-
//! loop throughput pass at the default level guards the admission
//! numbers in BENCH_serve.json: `stages` must stay within noise of the
//! pre-tracing baseline recorded there.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slackvm_serve::{
    run_closed_loop, BombardConfig, ModelSpec, Op, PlacementService, ServeConfig, TraceLevel,
};

fn service(trace: TraceLevel) -> PlacementService {
    PlacementService::start(ServeConfig {
        shards: 1,
        model: ModelSpec::default_shared(),
        trace,
        ..ServeConfig::default()
    })
    .expect("service start")
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve/trace");
    group.sample_size(10);

    for (label, level) in [
        ("off", TraceLevel::Off),
        ("stages", TraceLevel::Stages),
        ("sampled", TraceLevel::Sampled { every: 1 }),
    ] {
        group.bench_with_input(
            BenchmarkId::new("call_round_trip", label),
            &level,
            |b, &level| {
                let svc = service(level);
                let mut n = 0u64;
                b.iter(|| {
                    n += 1;
                    let spec = slackvm_model::VmSpec::of(
                        2,
                        slackvm_model::gib(4),
                        slackvm_model::OversubLevel::of(2),
                    );
                    std::hint::black_box(
                        svc.call(Op::Place {
                            id: slackvm_model::VmId(n),
                            spec,
                        })
                        .expect("call"),
                    )
                })
            },
        );
    }

    // Closed-loop admission at the default level, directly comparable
    // to serve/admission/closed_loop/1 from micro_serve_admission.
    let config = BombardConfig {
        population: 200,
        clients: 2,
        requests: 2_000,
        ..BombardConfig::default()
    };
    group.bench_function("closed_loop_stages/1", |b| {
        b.iter(|| {
            let svc = service(TraceLevel::Stages);
            let report = run_closed_loop(&svc, &config).expect("bombard");
            std::hint::black_box(svc.stop());
            std::hint::black_box(report)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
