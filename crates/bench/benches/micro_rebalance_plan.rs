//! Planning cost of the background consolidation pass.
//!
//! The online executor computes a rebalance plan inside the shard
//! worker's tick, between admission batches — so plan latency is the
//! number that decides how aggressive `--rebalance-every-ms` can be.
//! This bench replays a mid-week prefix of the paper's week-F trace
//! (the moment of peak departure fragmentation) into both deployment
//! models and measures the full plan pipeline (`plan_rebalance`: shadow
//! clone, victim ordering, candidate-indexed drain) and the validator
//! alone (`validate_plan`: the "checked, not trusted" replay the
//! executor pays again before moving anything). Record medians in
//! BENCH_replay.json when they move, noting fleet size next to each
//! figure — plan cost scales with live PMs, not with trace length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slackvm::prelude::*;
use slackvm_rebalance::{plan_rebalance, validate_plan, Budget};
use slackvm_workload::{scenarios, WorkloadEvent};

/// Replays the first 60% of a seeded week-F trace — mid-week, after
/// the departure tail has punched holes in the packing — and returns
/// the fragmented fleet.
fn fragmented(dedicated: bool, population: u32) -> DeploymentModel {
    let mut model = if dedicated {
        DeploymentModel::Dedicated(DedicatedDeployment::new(
            PmConfig::of(32, gib(128)),
            [
                OversubLevel::of(1),
                OversubLevel::of(2),
                OversubLevel::of(3),
            ],
        ))
    } else {
        DeploymentModel::Shared(SharedDeployment::with_policy(
            std::sync::Arc::new(flat(32)),
            gib(128),
            PlacementPolicy::FirstFit,
        ))
    };
    let trace = scenarios::paper_week_f(population).generate(42);
    let cutoff = trace.events.len() * 3 / 5;
    for (_at, event) in trace.events.iter().take(cutoff) {
        match event {
            WorkloadEvent::Arrival(vm) => {
                let _ = model.deploy(vm.id, vm.spec);
            }
            WorkloadEvent::Departure { id } => {
                if model.location_of(*id).is_some() {
                    model.remove(*id).expect("located VM removes");
                }
            }
            WorkloadEvent::Resize { .. } => {}
        }
    }
    model.check_invariants().expect("replayed state is legal");
    model
}

fn bench(c: &mut Criterion) {
    let budget = Budget::default();
    let mut group = c.benchmark_group("rebalance");

    for population in [200u32, 1000] {
        for (flavor, dedicated) in [("shared", false), ("dedicated", true)] {
            let model = fragmented(dedicated, population);
            let label = format!("{flavor}/{population}/pms{}", model.active_pms());
            group.bench_with_input(
                BenchmarkId::new("plan", &label),
                &model,
                |b, model| {
                    b.iter(|| {
                        std::hint::black_box(
                            plan_rebalance(model, &budget).expect("planner runs"),
                        )
                    })
                },
            );
            let plan = plan_rebalance(&model, &budget).expect("planner runs");
            group.bench_with_input(
                BenchmarkId::new("validate", &label),
                &(model, plan),
                |b, (model, plan)| {
                    b.iter(|| std::hint::black_box(validate_plan(model, plan).is_ok()))
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
