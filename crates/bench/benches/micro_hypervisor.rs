//! Micro-benchmarks of the local-scheduler hot path: distance-matrix
//! construction, core selection, and vNode deploy/remove cycles.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use slackvm::hypervisor::{Host, PhysicalMachine};
use slackvm::model::{gib, OversubLevel, PmId, VmId, VmSpec};
use slackvm::topology::builders;
use slackvm::topology::{DistanceMatrix, SelectionPolicy, TopologySelection};

fn bench(c: &mut Criterion) {
    let epyc = builders::dual_epyc_7662();

    c.bench_function("hypervisor/distance_matrix_epyc_256", |b| {
        b.iter(|| std::hint::black_box(DistanceMatrix::build(&epyc)))
    });

    let selection = TopologySelection::new(DistanceMatrix::build(&epyc));
    let members: Vec<_> = (0..32).map(slackvm::topology::CoreId).collect();
    let free: Vec<_> = (32..256).map(slackvm::topology::CoreId).collect();
    c.bench_function("hypervisor/pick_expansion_224_free", |b| {
        b.iter(|| std::hint::black_box(selection.pick_expansion(&members, &free)))
    });
    c.bench_function("hypervisor/pick_seed_224_free", |b| {
        b.iter(|| std::hint::black_box(selection.pick_seed(&members, &free)))
    });

    let topo = Arc::new(builders::dual_epyc_7662());
    c.bench_function("hypervisor/deploy_remove_cycle_3_levels", |b| {
        b.iter_batched(
            || PhysicalMachine::with_topology_policy(PmId(0), Arc::clone(&topo), gib(1024)),
            |mut m| {
                for i in 0..30u64 {
                    let level = OversubLevel::of((i % 3 + 1) as u32);
                    m.deploy(VmId(i), VmSpec::of(2, gib(4), level)).unwrap();
                }
                for i in 0..30u64 {
                    m.remove(VmId(i)).unwrap();
                }
                std::hint::black_box(m.churn().vm_repins)
            },
            BatchSize::SmallInput,
        )
    });

    let flat = Arc::new(builders::flat(32));
    c.bench_function("hypervisor/deploy_remove_cycle_sim_host", |b| {
        b.iter_batched(
            || PhysicalMachine::with_topology_policy(PmId(0), Arc::clone(&flat), gib(128)),
            |mut m| {
                for i in 0..12u64 {
                    let level = OversubLevel::of((i % 3 + 1) as u32);
                    m.deploy(VmId(i), VmSpec::of(2, gib(4), level)).unwrap();
                }
                for i in 0..12u64 {
                    m.remove(VmId(i)).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_extra(c: &mut Criterion) {
    // Compaction planning over a 40-machine snapshot set.
    let snapshots: Vec<slackvm::hypervisor::MachineSnapshot> = (0..40u32)
        .map(|pm| {
            let mut m = PhysicalMachine::with_topology_policy(
                PmId(pm),
                Arc::new(builders::flat(32)),
                gib(128),
            );
            for i in 0..(pm % 7) as u64 {
                let level = OversubLevel::of((i % 3 + 1) as u32);
                m.deploy(VmId(pm as u64 * 100 + i), VmSpec::of(2, gib(4), level))
                    .unwrap();
            }
            m.snapshot()
        })
        .collect();
    c.bench_function("hypervisor/plan_compaction_40_machines", |b| {
        b.iter(|| std::hint::black_box(slackvm::hypervisor::plan_compaction(&snapshots)))
    });

    // Workload generation at the paper's protocol scale.
    c.bench_function("workload/generate_paper_week_500", |b| {
        b.iter(|| std::hint::black_box(slackvm::workload::scenarios::paper_week_f(500).generate(1)))
    });

    // Erlang-C at control-plane fan-out sizes.
    c.bench_function("perf/erlang_c_256_servers", |b| {
        b.iter(|| std::hint::black_box(slackvm::perf::erlang_c(256, 0.93)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench, bench_extra
}
criterion_main!(benches);
