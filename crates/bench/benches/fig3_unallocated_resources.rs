//! Regenerates paper Fig. 3 (unallocated CPU/memory shares across the
//! fifteen distributions, baseline vs SlackVM, both providers) and
//! times a full distribution replay.

use criterion::{criterion_group, criterion_main, Criterion};
use slackvm::experiments::{compare_packing, run_fig3};
use slackvm::workload::{catalog, DistributionPoint};
use slackvm_bench::{banner, bench_packing_config};

fn print_fig3() {
    let config = bench_packing_config();
    for cat in [catalog::azure(), catalog::ovhcloud()] {
        banner(&format!(
            "Fig. 3 — unallocated resources at peak ({}, {} VMs)",
            cat.provider, config.target_population
        ));
        println!(
            "{:<4} {:<12} {:>10} {:>10} {:>10} {:>10} {:>14}",
            "dist", "mix", "base cpu", "base mem", "slack cpu", "slack mem", "PMs"
        );
        for r in run_fig3(&cat, &config) {
            println!(
                "{:<4} {:<12} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}% {:>8}->{}",
                r.letter,
                format!("{}/{}/{}", r.shares.0, r.shares.1, r.shares.2),
                r.baseline_cpu * 100.0,
                r.baseline_mem * 100.0,
                r.slackvm_cpu * 100.0,
                r.slackvm_mem * 100.0,
                r.baseline_pms,
                r.slackvm_pms,
            );
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_fig3();
    let config = bench_packing_config();
    let cat = catalog::ovhcloud();
    let f = DistributionPoint::by_letter('F').unwrap().mix();
    c.bench_function("fig3/compare_packing_F_ovh", |b| {
        b.iter(|| std::hint::black_box(compare_packing(&cat, &f, &config)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
