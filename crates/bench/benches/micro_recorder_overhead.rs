//! Recording-off overhead on the replay hot path.
//!
//! The telemetry layer promises that a [`NullRecorder`] is free: every
//! hook is an `#[inline]` default no-op, so `run_packing_recorded` with
//! the null recorder must land within measurement noise of the bare
//! `run_packing`. This harness pins that promise, and also quantifies
//! what the *enabled* paths cost — the full [`Telemetry`] stack and an
//! hourly [`ClusterSampler`] — so regressions in either budget show up
//! in the criterion history. Record the observed deltas in
//! EXPERIMENTS.md when they move.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use slackvm::prelude::*;

fn workload(population: u32) -> Workload {
    WorkloadGenerator::new(WorkloadSpec {
        catalog: catalog::azure(),
        mix: DistributionPoint::by_letter('F').expect("F exists").mix(),
        arrivals: ArrivalModel::constant(population, 2 * 86_400, 7 * 86_400),
        seed: 0x5AC4,
    })
    .generate()
}

fn shared_model() -> DeploymentModel {
    DeploymentModel::Shared(SharedDeployment::new(Arc::new(flat(32)), gib(128)))
}

fn bench(c: &mut Criterion) {
    let wl = workload(300);
    let mut group = c.benchmark_group("sim/recorder_overhead");

    group.bench_function("bare", |b| {
        b.iter(|| {
            let mut model = shared_model();
            std::hint::black_box(run_packing(&wl, &mut model))
        })
    });

    group.bench_function("null_recorder", |b| {
        b.iter(|| {
            let mut model = shared_model();
            let mut recorder = NullRecorder;
            std::hint::black_box(run_packing_recorded(&wl, &mut model, &mut recorder))
        })
    });

    group.bench_function("telemetry", |b| {
        b.iter(|| {
            let mut model = shared_model();
            let mut telemetry = Telemetry::new();
            std::hint::black_box(run_packing_recorded(&wl, &mut model, &mut telemetry))
        })
    });

    group.bench_function("telemetry_sampled_hourly", |b| {
        b.iter(|| {
            let mut model = shared_model();
            let mut telemetry = Telemetry::new();
            let mut sampler = ClusterSampler::new(3600);
            std::hint::black_box(run_packing_observed(
                &wl,
                &mut model,
                None,
                Some(&mut sampler),
                &mut telemetry,
            ))
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
