//! Shared helpers for the SlackVM bench harness.
//!
//! Every bench target regenerates its paper artifact (table rows or
//! figure series) on stdout *before* running its Criterion timings, so
//! `cargo bench` doubles as the reproduction driver.

use slackvm::experiments::PackingConfig;

/// The population used by the packing benches. The paper's protocol
/// targets 500 VMs; benches default to the same but can be trimmed via
/// `SLACKVM_BENCH_POPULATION` when iterating.
pub fn bench_packing_config() -> PackingConfig {
    let population = std::env::var("SLACKVM_BENCH_POPULATION")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    PackingConfig {
        target_population: population,
        ..PackingConfig::default()
    }
}

/// Prints a section banner so bench output reads as a report.
pub fn banner(title: &str) {
    println!("\n==== {title} ====\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_population_matches_paper() {
        // (Runs without the env var in CI.)
        if std::env::var("SLACKVM_BENCH_POPULATION").is_err() {
            assert_eq!(bench_packing_config().target_population, 500);
        }
    }
}
