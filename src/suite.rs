//! Helper utilities shared by the workspace examples and integration
//! tests.

use slackvm::prelude::*;

/// Builds a small, fast workload for integration tests: `population`
/// VMs steady-state over `days` days.
pub fn test_workload(
    catalog: Catalog,
    mix: LevelMix,
    population: u32,
    days: u64,
    seed: u64,
) -> Workload {
    WorkloadGenerator::new(WorkloadSpec {
        catalog,
        mix,
        arrivals: ArrivalModel::constant(population, 86_400, days * 86_400),
        seed,
    })
    .generate()
}

/// The three paper levels.
pub fn paper_levels() -> Vec<OversubLevel> {
    vec![
        OversubLevel::of(1),
        OversubLevel::of(2),
        OversubLevel::of(3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use slackvm::workload::catalog;

    #[test]
    fn test_workload_is_small_and_valid() {
        let w = test_workload(
            catalog::azure(),
            LevelMix::three_level(1.0, 1.0, 1.0).unwrap(),
            50,
            2,
            7,
        );
        w.validate().unwrap();
        assert!(w.num_arrivals() > 20);
    }
}
